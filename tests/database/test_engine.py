"""Unit tests for the top-k query engine and ranking functions."""

import pytest

from repro.database.engine import QueryEngine, QueryOutcome
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import (
    AttributeWeightedRanking,
    HashRanking,
    RowIdRanking,
    StaticScoreRanking,
)
from repro.exceptions import SchemaError


class TestRankingFunctions:
    def test_static_score_ranks_higher_scores_first(self, tiny_table):
        ranking = StaticScoreRanking()
        order = ranking.order(tiny_table, list(range(len(tiny_table))))
        scores = [tiny_table[row_id]["score"] for row_id in order]
        assert scores == sorted(scores, reverse=True)

    def test_static_score_missing_scores_rank_last(self, tiny_schema):
        from repro.database.table import Table

        rows = [
            {"make": "Ford", "color": "red", "price": 5_000.0},
            {"make": "Honda", "color": "red", "price": 5_000.0, "score": 1.0},
        ]
        table = Table(tiny_schema, rows)
        order = StaticScoreRanking().order(table, [0, 1])
        assert order == [1, 0]

    def test_static_score_requires_column_name(self):
        with pytest.raises(SchemaError):
            StaticScoreRanking("")

    def test_attribute_weighted_ranking(self, tiny_table):
        ranking = AttributeWeightedRanking({"price": -1.0})
        order = ranking.order(tiny_table, list(range(len(tiny_table))))
        prices = [tiny_table[row_id]["price"] for row_id in order]
        assert prices == sorted(prices)

    def test_attribute_weighted_requires_weights(self):
        with pytest.raises(SchemaError):
            AttributeWeightedRanking({})

    def test_hash_ranking_is_deterministic_and_salt_dependent(self, tiny_table):
        ids = list(range(len(tiny_table)))
        a = HashRanking("salt-a").order(tiny_table, ids)
        b = HashRanking("salt-a").order(tiny_table, ids)
        c = HashRanking("salt-b").order(tiny_table, ids)
        assert a == b
        assert set(a) == set(ids)
        assert a != c  # overwhelmingly likely for 8 rows

    def test_row_id_ranking_keeps_insertion_order(self, tiny_table):
        assert RowIdRanking().order(tiny_table, [3, 1, 2]) == [1, 2, 3]

    def test_top_k_truncates(self, tiny_table):
        assert len(RowIdRanking().top_k(tiny_table, list(range(8)), 3)) == 3
        with pytest.raises(ValueError):
            RowIdRanking().top_k(tiny_table, [0], -1)


class TestQueryEngine:
    def test_k_must_be_positive(self, tiny_table):
        with pytest.raises(ValueError):
            QueryEngine(tiny_table, k=0)

    def test_empty_result(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=2)
        query = ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Honda", "price": "0-10000"}
        )
        result = engine.execute(query)
        assert result.outcome is QueryOutcome.EMPTY
        assert result.empty and not result.overflow
        assert result.returned_row_ids == ()
        assert result.total_count == 0

    def test_valid_result_returns_all_matches(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=5)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        result = engine.execute(query)
        assert result.outcome is QueryOutcome.VALID
        assert result.returned_count == result.total_count == 2

    def test_overflow_returns_top_k_by_ranking(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=2, ranking=StaticScoreRanking())
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        result = engine.execute(query)
        assert result.outcome is QueryOutcome.OVERFLOW
        assert result.overflow
        assert result.total_count == 4
        assert result.returned_count == 2
        # The two highest-score Toyotas are rows 0 and 1.
        assert set(result.returned_row_ids) == {0, 1}

    def test_count_and_matching_row_ids(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=2)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"color": "red"})
        assert engine.count(query) == 4
        assert engine.matching_row_ids(query) == [0, 2, 4, 6]

    def test_rows_materialisation(self, tiny_table):
        engine = QueryEngine(tiny_table, k=2)
        rows = engine.rows([1, 3])
        assert [row["score"] for row in rows] == [9.0, 7.0]

    def test_empty_query_overflow_on_small_k(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=2)
        result = engine.execute(ConjunctiveQuery.empty(tiny_schema))
        assert result.overflow
        assert result.total_count == len(tiny_table)

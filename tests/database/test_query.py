"""Unit tests for conjunctive queries and their little algebra."""

import pytest

from repro.database.query import ConjunctiveQuery, Predicate, enumerate_leaf_queries
from repro.exceptions import QueryError


class TestConstruction:
    def test_empty_query_has_no_predicates(self, tiny_schema):
        query = ConjunctiveQuery.empty(tiny_schema)
        assert len(query) == 0
        assert query.free_attributes == tiny_schema.attribute_names

    def test_from_assignment(self, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota", "color": "red"})
        assert query.value_of("make") == "Toyota"
        assert query.value_of("price") is None

    def test_duplicate_predicates_rejected(self, tiny_schema):
        with pytest.raises(QueryError):
            ConjunctiveQuery(tiny_schema, [Predicate("make", "Toyota"), Predicate("make", "Honda")])

    def test_unknown_attribute_rejected(self, tiny_schema):
        with pytest.raises(Exception):
            ConjunctiveQuery(tiny_schema, [Predicate("engine", "V8")])

    def test_out_of_domain_value_rejected(self, tiny_schema):
        with pytest.raises(QueryError):
            ConjunctiveQuery(tiny_schema, [Predicate("make", "Tesla")])

    def test_str_of_empty_and_nonempty_query(self, tiny_schema):
        assert str(ConjunctiveQuery.empty(tiny_schema)) == "SELECT * FROM tiny"
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        assert "WHERE make = 'Ford'" in str(query)


class TestAlgebra:
    def test_specialise_adds_one_predicate(self, tiny_schema):
        query = ConjunctiveQuery.empty(tiny_schema).specialise("make", "Honda")
        assert query.constrained_attributes == ("make",)
        with pytest.raises(QueryError):
            query.specialise("make", "Ford")

    def test_generalise_removes_a_predicate(self, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "color": "red"})
        relaxed = query.generalise("make")
        assert relaxed.constrained_attributes == ("color",)
        with pytest.raises(QueryError):
            relaxed.generalise("make")

    def test_subsumption(self, tiny_schema):
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        narrow = broad.specialise("color", "red")
        assert broad.subsumes(narrow)
        assert not narrow.subsumes(broad)
        assert ConjunctiveQuery.empty(tiny_schema).subsumes(narrow)
        assert narrow.is_specialisation_of(broad)

    def test_contradiction(self, tiny_schema):
        toyota = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        honda_red = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "color": "red"})
        assert toyota.contradicts(honda_red)
        assert not toyota.contradicts(toyota.specialise("color", "blue"))

    def test_canonical_key_is_order_independent(self, tiny_schema):
        a = ConjunctiveQuery(tiny_schema, [Predicate("make", "Ford"), Predicate("color", "red")])
        b = ConjunctiveQuery(tiny_schema, [Predicate("color", "red"), Predicate("make", "Ford")])
        assert a.canonical_key() == b.canonical_key()
        assert a == b
        assert hash(a) == hash(b)

    def test_children_enumerate_the_domain(self, tiny_schema):
        root = ConjunctiveQuery.empty(tiny_schema)
        children = root.children("color")
        assert [child.value_of("color") for child in children] == ["red", "blue"]
        with pytest.raises(QueryError):
            children[0].children("color")

    def test_is_fully_specified(self, tiny_schema):
        query = ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Ford", "color": "red", "price": "0-10000"}
        )
        assert query.is_fully_specified()
        assert not query.generalise("price").is_fully_specified()


class TestEvaluation:
    def test_matches_categorical_and_numeric(self, tiny_schema, tiny_table):
        query = ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Toyota", "price": "0-10000"}
        )
        matches = [row for row in tiny_table if query.matches(row)]
        assert len(matches) == 2

    def test_empty_query_matches_everything(self, tiny_schema, tiny_table):
        query = ConjunctiveQuery.empty(tiny_schema)
        assert all(query.matches(row) for row in tiny_table)


class TestLeafEnumeration:
    def test_enumerates_every_combination_once(self, tiny_schema):
        leaves = list(enumerate_leaf_queries(tiny_schema))
        assert len(leaves) == tiny_schema.total_combinations()
        assert len({leaf.canonical_key() for leaf in leaves}) == len(leaves)
        assert all(leaf.is_fully_specified() for leaf in leaves)

    def test_enumeration_respects_custom_order(self, tiny_schema):
        leaves = list(enumerate_leaf_queries(tiny_schema, order=("price", "color", "make")))
        assert len(leaves) == tiny_schema.total_combinations()

    def test_enumeration_rejects_partial_order(self, tiny_schema):
        with pytest.raises(QueryError):
            list(enumerate_leaf_queries(tiny_schema, order=("make",)))

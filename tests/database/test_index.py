"""Unit tests for the inverted-index subsystem (posting lists, rank caches)."""

import pytest

from repro.database.engine import QueryEngine, QueryOutcome
from repro.database.index import RankCache, TableIndex
from repro.database.interface import HiddenDatabaseInterface
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import HashRanking, StaticScoreRanking
from repro.database.table import Table


class TestTableIndex:
    def test_index_is_built_once_and_shared(self, tiny_table):
        index = tiny_table.index
        assert index is tiny_table.index
        assert QueryEngine(tiny_table, k=2).table.index is index

    def test_posting_lists_are_sorted_int64_arrays(self, tiny_table):
        from array import array

        index = tiny_table.index
        assert index.posting_list("make", "Toyota") == array("q", (0, 1, 2, 3))
        assert index.posting_list("color", "red") == array("q", (0, 2, 4, 6))
        assert index.posting_list("price", "0-10000") == array("q", (0, 3, 6))
        assert tuple(index.posting_list("make", "Tesla")) == ()
        assert isinstance(index.posting_list("make", "Toyota"), array)

    def test_numeric_column_is_binned_once_into_labels(self, tiny_table):
        column = tiny_table.index.selectable_column("price")
        assert list(column)[:3] == ["0-10000", "10000-20000", "20000-40000"]

    def test_matching_row_ids_intersects_ascending(self, tiny_table, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota", "color": "red"})
        assert tiny_table.index.matching_row_ids(query) == [0, 2]
        root = ConjunctiveQuery.empty(tiny_schema)
        assert tiny_table.index.matching_row_ids(root) == list(range(8))

    def test_count_without_materialising_rows(self, tiny_table, tiny_schema):
        index = tiny_table.index
        assert index.count(ConjunctiveQuery.empty(tiny_schema)) == 8
        assert index.count(ConjunctiveQuery.from_assignment(tiny_schema, {"color": "red"})) == 4
        assert index.count(
            ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "price": "0-10000"})
        ) == 0

    def test_unvalidated_out_of_bucket_rows_match_nothing(self, tiny_schema):
        table = Table(
            tiny_schema,
            [{"make": "Ford", "color": "red", "price": 999_999.0}],
            validate=False,
        )
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"price": "0-10000"})
        assert table.index.matching_row_ids(query) == []
        assert tuple(table.index.posting_list("make", "Ford")) == (0,)

    def test_rank_cache_is_memoised_per_ranking_instance(self, tiny_table):
        index = tiny_table.index
        ranking = StaticScoreRanking()
        assert index.rank_cache(ranking) is index.rank_cache(ranking)
        assert index.rank_cache(ranking) is not index.rank_cache(StaticScoreRanking())

    def test_rank_caches_die_with_their_ranking(self, tiny_table):
        """Caches are weakly keyed so churning engines cannot accrete memory
        on the table-lifetime index."""
        import gc

        index = tiny_table.index
        baseline = len(index._rank_caches)
        ranking = StaticScoreRanking()
        index.rank_cache(ranking)
        assert len(index._rank_caches) == baseline + 1
        del ranking
        gc.collect()
        assert len(index._rank_caches) == baseline


class TestRankCache:
    @pytest.mark.parametrize("ranking", [StaticScoreRanking(), HashRanking("idx")])
    def test_order_and_top_k_match_the_naive_ranking(self, tiny_table, ranking):
        cache = RankCache(tiny_table, ranking)
        ids = [5, 0, 7, 2, 3]
        assert cache.order(ids) == ranking.order(tiny_table, ids)
        assert cache.top_k(ids, 2) == ranking.top_k(tiny_table, ids, 2)
        assert cache.top_k(ids, 99) == ranking.top_k(tiny_table, ids, 99)
        with pytest.raises(ValueError):
            cache.top_k(ids, -1)

    def test_by_rank_is_a_permutation_of_all_rows(self, tiny_table):
        cache = RankCache(tiny_table, HashRanking("perm"))
        assert sorted(cache.by_rank) == list(range(len(tiny_table)))
        assert [cache.position[row_id] for row_id in cache.by_rank] == list(range(len(tiny_table)))


class TestEngineFlag:
    def test_scan_engine_never_touches_the_index_rank_caches(self, tiny_table, tiny_schema):
        engine = QueryEngine(tiny_table, k=2, ranking=StaticScoreRanking(), use_index=False)
        result = engine.execute(ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"}))
        assert result.outcome is QueryOutcome.OVERFLOW
        assert engine._rank_cache is None

    def test_interface_forwards_use_index(self, tiny_table, tiny_schema):
        fast = HiddenDatabaseInterface(tiny_table, k=2, use_index=True)
        slow = HiddenDatabaseInterface(tiny_table, k=2, use_index=False)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"color": "blue"})
        assert [t.tuple_id for t in fast.submit(query).tuples] == [
            t.tuple_id for t in slow.submit(query).tuples
        ]

"""Unit tests for the in-memory table storage."""

import pytest

from repro.database.schema import Attribute, Domain, Schema
from repro.database.table import Table
from repro.exceptions import DomainValueError, SchemaError, UnknownAttributeError


class TestValidation:
    def test_missing_searchable_column_is_rejected(self, tiny_schema):
        with pytest.raises(SchemaError):
            Table(tiny_schema, [{"make": "Toyota", "color": "red"}])

    def test_out_of_domain_categorical_is_rejected(self, tiny_schema):
        with pytest.raises(DomainValueError):
            Table(tiny_schema, [{"make": "Tesla", "color": "red", "price": 5_000.0}])

    def test_out_of_range_numeric_is_rejected(self, tiny_schema):
        with pytest.raises(DomainValueError):
            Table(tiny_schema, [{"make": "Ford", "color": "red", "price": 999_999.0}])

    def test_validate_false_skips_checks(self, tiny_schema):
        table = Table(tiny_schema, [{"make": "Tesla", "color": "red", "price": 1.0}], validate=False)
        assert len(table) == 1


class TestAccess:
    def test_len_iter_getitem(self, tiny_table):
        assert len(tiny_table) == 8
        assert tiny_table[0]["make"] == "Toyota"
        assert sum(1 for _ in tiny_table) == 8

    def test_row_ids_match_positions(self, tiny_table):
        assert list(tiny_table.row_ids()) == list(range(8))

    def test_column_returns_searchable_and_hidden_columns(self, tiny_table):
        assert tiny_table.column("make")[0] == "Toyota"
        assert tiny_table.column("score")[0] == 10.0
        with pytest.raises(UnknownAttributeError):
            tiny_table.column("missing")

    def test_column_finds_hidden_columns_missing_from_the_first_row(self, tiny_schema):
        """A sparse hidden column exists if *any* row carries it; absent rows
        contribute ``None`` holes."""
        rows = [
            {"make": "Ford", "color": "red", "price": 5_000.0},
            {"make": "Honda", "color": "red", "price": 5_000.0, "note": "clean"},
        ]
        table = Table(tiny_schema, rows)
        assert table.column("note") == [None, "clean"]

    def test_column_on_empty_table_raises_for_non_searchable_names(self, tiny_schema):
        table = Table(tiny_schema, [])
        assert table.column("make") == []
        with pytest.raises(UnknownAttributeError):
            table.column("score")

    def test_selectable_row_translates_numeric_to_bucket_labels(self, tiny_table):
        selectable = tiny_table.selectable_row(tiny_table[0])
        assert selectable == {"make": "Toyota", "color": "red", "price": "0-10000"}

    def test_selectable_value_single_attribute(self, tiny_table):
        assert tiny_table.selectable_value("price", tiny_table[1]) == "10000-20000"


class TestDerivedTables:
    def test_select_filters_rows(self, tiny_table):
        toyota = tiny_table.select(lambda row: row["make"] == "Toyota")
        assert len(toyota) == 4
        assert all(row["make"] == "Toyota" for row in toyota)

    def test_matching_row_ids(self, tiny_table):
        ids = tiny_table.matching_row_ids(lambda row: row["color"] == "red")
        assert ids == [0, 2, 4, 6]

    def test_project_restricts_schema_but_keeps_hidden_columns(self, tiny_table):
        projected = tiny_table.project(["make"])
        assert projected.schema.attribute_names == ("make",)
        assert "score" in projected[0]
        assert "color" not in projected[0]

    def test_value_counts_ground_truth(self, tiny_table):
        counts = tiny_table.value_counts("make")
        assert counts == {"Toyota": 4, "Honda": 2, "Ford": 2}

    def test_value_counts_numeric_buckets(self, tiny_table):
        counts = tiny_table.value_counts("price")
        assert counts == {"0-10000": 3, "10000-20000": 2, "20000-40000": 3}

    def test_describe_contains_row_count(self, tiny_table):
        assert "8 rows" in tiny_table.describe()

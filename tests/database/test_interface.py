"""Unit tests for the hidden-database interface contract and query budgets."""

import pytest

from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.database.query import ConjunctiveQuery
from repro.database.stats import (
    conditional_fraction,
    ground_truth_aggregate,
    ground_truth_marginal,
    ground_truth_marginal_counts,
    numeric_attribute_names,
    summarise_table,
)
from repro.exceptions import InterfaceError, QueryBudgetExceededError, QueryError


class TestInterfaceResponses:
    def test_valid_response_contains_raw_and_selectable_values(self, tiny_interface, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        response = tiny_interface.submit(query)
        assert response.valid and not response.overflow
        returned = response.tuples[0]
        assert returned.values["make"] == "Honda"
        assert returned.selectable_values["price"] in {"10000-20000", "20000-40000"}

    def test_overflow_response_is_flagged_and_truncated(self, tiny_interface, tiny_schema):
        response = tiny_interface.submit(ConjunctiveQuery.empty(tiny_schema))
        assert response.overflow
        assert len(response.tuples) == tiny_interface.k == 2

    def test_empty_response(self, tiny_interface, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford", "color": "blue", "price": "0-10000"})
        response = tiny_interface.submit(query)
        assert response.empty and not response.valid

    def test_exact_count_mode_reports_true_counts(self, tiny_interface, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        response = tiny_interface.submit(query)
        assert response.reported_count == 4

    def test_none_count_mode_hides_counts(self, tiny_table, tiny_schema):
        interface = HiddenDatabaseInterface(tiny_table, k=2, count_mode=CountMode.NONE)
        response = interface.submit(ConjunctiveQuery.empty(tiny_schema))
        assert response.reported_count is None

    def test_noisy_count_mode_is_bounded_and_deterministic_per_seed(self, tiny_table, tiny_schema):
        interface = HiddenDatabaseInterface(
            tiny_table, k=2, count_mode=CountMode.NOISY, count_noise=0.5, seed=42
        )
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        reported = interface.submit(query).reported_count
        assert 2 <= reported <= 6  # 4 ± 50%
        again = HiddenDatabaseInterface(
            tiny_table, k=2, count_mode=CountMode.NOISY, count_noise=0.5, seed=42
        )
        assert again.submit(query).reported_count == reported

    def test_noisy_count_of_zero_stays_zero(self, tiny_table, tiny_schema):
        interface = HiddenDatabaseInterface(tiny_table, k=2, count_mode=CountMode.NOISY, seed=1)
        query = ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Honda", "price": "0-10000"}
        )
        assert interface.submit(query).reported_count == 0

    def test_negative_count_noise_rejected(self, tiny_table):
        with pytest.raises(InterfaceError):
            HiddenDatabaseInterface(tiny_table, k=2, count_noise=-0.1)

    def test_display_columns_are_included(self, tiny_table, tiny_schema):
        interface = HiddenDatabaseInterface(tiny_table, k=10, display_columns=("score",))
        response = interface.submit(ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"}))
        assert all("score" in t.values for t in response.tuples)

    def test_statistics_are_recorded(self, tiny_interface, tiny_schema):
        tiny_interface.submit(ConjunctiveQuery.empty(tiny_schema))
        tiny_interface.submit(ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"}))
        stats = tiny_interface.statistics.as_dict()
        assert stats["queries_issued"] == 2
        assert stats["overflow_results"] == 1
        assert stats["valid_results"] == 1
        tiny_interface.reset_statistics()
        assert tiny_interface.statistics.queries_issued == 0

    def test_true_count_is_operator_side_only_helper(self, tiny_interface, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"color": "red"})
        before = tiny_interface.statistics.queries_issued
        assert tiny_interface.true_count(query) == 4
        assert tiny_interface.statistics.queries_issued == before


class TestQueryBudget:
    def test_budget_exhaustion_raises(self, tiny_table, tiny_schema):
        interface = HiddenDatabaseInterface(tiny_table, k=2, budget=QueryBudget(limit=2))
        interface.submit(ConjunctiveQuery.empty(tiny_schema))
        interface.submit(ConjunctiveQuery.empty(tiny_schema))
        with pytest.raises(QueryBudgetExceededError):
            interface.submit(ConjunctiveQuery.empty(tiny_schema))

    def test_budget_accounting(self):
        budget = QueryBudget(limit=3)
        assert budget.remaining == 3 and not budget.exhausted
        budget.charge(2)
        assert budget.remaining == 1
        assert budget.can_afford(1) and not budget.can_afford(2)
        budget.charge()
        assert budget.exhausted
        budget.reset()
        assert budget.issued == 0

    def test_unlimited_budget(self):
        budget = QueryBudget()
        budget.charge(10_000)
        assert budget.remaining is None and not budget.exhausted

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(limit=-1)
        with pytest.raises(ValueError):
            QueryBudget().charge(-1)

    def test_budget_copy_is_independent(self):
        budget = QueryBudget(limit=5, issued=2)
        clone = budget.copy()
        clone.charge()
        assert budget.issued == 2 and clone.issued == 3


class TestGroundTruthStats:
    def test_marginal_fractions_sum_to_one(self, tiny_table):
        marginal = ground_truth_marginal(tiny_table, "make")
        assert marginal["Toyota"] == pytest.approx(0.5)
        assert sum(marginal.values()) == pytest.approx(1.0)

    def test_marginal_counts(self, tiny_table):
        assert ground_truth_marginal_counts(tiny_table, "color") == {"red": 4, "blue": 4}

    def test_aggregates(self, tiny_table, tiny_schema):
        assert ground_truth_aggregate(tiny_table, "count") == 8
        assert ground_truth_aggregate(tiny_table, "avg", "price") == pytest.approx(16_250.0)
        toyota = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        assert ground_truth_aggregate(tiny_table, "count", condition=toyota) == 4
        assert ground_truth_aggregate(tiny_table, "sum", "price", condition=toyota) == pytest.approx(50_000.0)

    def test_aggregate_validation(self, tiny_table):
        with pytest.raises(QueryError):
            ground_truth_aggregate(tiny_table, "median")
        with pytest.raises(QueryError):
            ground_truth_aggregate(tiny_table, "sum")

    def test_conditional_fraction_and_helpers(self, tiny_table):
        assert conditional_fraction(tiny_table, lambda row: row["make"] == "Ford") == pytest.approx(0.25)
        assert numeric_attribute_names(tiny_table) == ("price",)
        summary = summarise_table(tiny_table)
        assert set(summary) == {"make", "color", "price"}

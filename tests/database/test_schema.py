"""Unit tests for the schema model (attributes, domains, schemas)."""

import pytest

from repro.database.schema import Attribute, AttributeKind, Domain, NumericBucket, Schema
from repro.exceptions import DomainValueError, SchemaError, UnknownAttributeError


class TestDomain:
    def test_boolean_domain_has_exactly_false_and_true(self):
        domain = Domain.boolean()
        assert domain.kind is AttributeKind.BOOLEAN
        assert set(domain.values) == {False, True}
        assert domain.size == 2

    def test_categorical_domain_preserves_order(self):
        domain = Domain.categorical(("b", "a", "c"))
        assert domain.values == ("b", "a", "c")

    def test_categorical_domain_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Domain.categorical(("a", "a"))

    def test_categorical_domain_rejects_empty(self):
        with pytest.raises(SchemaError):
            Domain.categorical(())

    def test_boolean_domain_rejects_wrong_values(self):
        with pytest.raises(SchemaError):
            Domain(AttributeKind.BOOLEAN, values=(True, "yes"))

    def test_numeric_domain_builds_buckets_from_edges(self):
        domain = Domain.numeric_buckets((0.0, 10.0, 20.0))
        assert domain.kind is AttributeKind.NUMERIC
        assert domain.size == 2
        assert domain.values == ("0-10", "10-20")

    def test_numeric_domain_requires_two_edges(self):
        with pytest.raises(SchemaError):
            Domain.numeric_buckets((5.0,))

    def test_numeric_buckets_cannot_overlap(self):
        with pytest.raises(SchemaError):
            Domain(
                AttributeKind.NUMERIC,
                buckets=(NumericBucket(0.0, 10.0), NumericBucket(5.0, 15.0)),
            )

    def test_bucket_for_maps_raw_values(self):
        domain = Domain.numeric_buckets((0.0, 10.0, 20.0))
        assert domain.bucket_for(3.0).label == "0-10"
        assert domain.bucket_for(10.0).label == "10-20"
        assert domain.bucket_for(25.0) is None

    def test_bucket_for_raises_on_non_numeric_domain(self):
        with pytest.raises(SchemaError):
            Domain.categorical(("a",)).bucket_for(1.0)

    def test_selectable_value_for_numeric_is_the_bucket_label(self):
        domain = Domain.numeric_buckets((0.0, 10.0, 20.0))
        assert domain.selectable_value_for(12.5) == "10-20"

    def test_selectable_value_for_out_of_range_numeric_raises(self):
        domain = Domain.numeric_buckets((0.0, 10.0))
        with pytest.raises(DomainValueError):
            domain.selectable_value_for(999.0)

    def test_selectable_value_for_categorical_is_identity(self):
        domain = Domain.categorical(("x", "y"))
        assert domain.selectable_value_for("x") == "x"

    def test_selectable_value_for_unknown_categorical_raises(self):
        domain = Domain.categorical(("x", "y"))
        with pytest.raises(DomainValueError):
            domain.selectable_value_for("z")

    def test_membership_and_iteration(self):
        domain = Domain.categorical(("x", "y"))
        assert "x" in domain
        assert "z" not in domain
        assert list(domain) == ["x", "y"]

    def test_equality_and_hash(self):
        assert Domain.categorical(("x", "y")) == Domain.categorical(("x", "y"))
        assert Domain.categorical(("x",)) != Domain.categorical(("y",))
        assert hash(Domain.boolean()) == hash(Domain.boolean())

    def test_numeric_bucket_requires_low_below_high(self):
        with pytest.raises(SchemaError):
            NumericBucket(5.0, 5.0)


class TestAttribute:
    def test_attribute_exposes_kind_and_cardinality(self):
        attribute = Attribute("color", Domain.categorical(("red", "blue")))
        assert attribute.kind is AttributeKind.CATEGORICAL
        assert attribute.cardinality == 2

    def test_attribute_name_must_be_nonempty(self):
        with pytest.raises(SchemaError):
            Attribute("  ", Domain.boolean())

    def test_attribute_name_rejects_url_unsafe_characters(self):
        with pytest.raises(SchemaError):
            Attribute("a=b", Domain.boolean())

    def test_validate_value(self):
        attribute = Attribute("color", Domain.categorical(("red", "blue")))
        attribute.validate_value("red")
        with pytest.raises(DomainValueError):
            attribute.validate_value("green")


class TestSchema:
    def test_schema_requires_at_least_one_attribute(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_schema_rejects_duplicate_names(self):
        attribute = Attribute("a", Domain.boolean())
        with pytest.raises(SchemaError):
            Schema([attribute, Attribute("a", Domain.boolean())])

    def test_attribute_lookup(self, tiny_schema):
        assert tiny_schema.attribute("make").name == "make"
        assert tiny_schema["color"].cardinality == 2
        with pytest.raises(UnknownAttributeError):
            tiny_schema.attribute("missing")

    def test_contains_and_len_and_iteration(self, tiny_schema):
        assert "make" in tiny_schema
        assert "missing" not in tiny_schema
        assert len(tiny_schema) == 3
        assert [a.name for a in tiny_schema] == ["make", "color", "price"]

    def test_project_preserves_order_and_validates(self, tiny_schema):
        projected = tiny_schema.project(["price", "make"])
        assert projected.attribute_names == ("price", "make")
        with pytest.raises(UnknownAttributeError):
            tiny_schema.project(["nope"])

    def test_total_combinations_is_product_of_cardinalities(self, tiny_schema):
        assert tiny_schema.total_combinations() == 3 * 2 * 3

    def test_validate_assignment(self, tiny_schema):
        tiny_schema.validate_assignment({"make": "Toyota", "color": "red"})
        with pytest.raises(DomainValueError):
            tiny_schema.validate_assignment({"make": "Tesla"})

    def test_describe_mentions_every_attribute(self, tiny_schema):
        text = tiny_schema.describe()
        for name in tiny_schema.attribute_names:
            assert name in text

    def test_equality(self, tiny_schema):
        clone = Schema(tiny_schema.attributes, name="other")
        assert clone == tiny_schema

"""DEGRADED parking: one dead backend must not stall the whole service.

A job whose backend circuit is open parks as degraded instead of killing
``run_all``; jobs on healthy backends keep their scheduler slots, and the
parked job rejoins the rotation once the breaker would admit a probe again.
"""

import pytest

from repro.backends import (
    BackendStack,
    CircuitBreakerLayer,
    CircuitBreakerPolicy,
    UnreliableLayer,
    engine_stack,
)
from repro.core.config import HDSamplerConfig
from repro.database.interface import CountMode
from repro.database.ranking import StaticScoreRanking
from repro.exceptions import CircuitOpenError, TransientBackendError
from repro.service import SamplingService
from repro.service.job import DEFAULT_DEGRADED_PARK


class SwitchableBackend:
    """Raw-contract shim whose availability the test flips at will."""

    def __init__(self, inner):
        self.inner = inner
        self.failing = False

    @property
    def schema(self):
        return self.inner.schema

    @property
    def k(self):
        return self.inner.k

    def submit(self, query):
        if self.failing:
            raise TransientBackendError("backend down")
        return self.inner.submit(query)


def guarded_stack(tiny_table, switchable, reset_timeout=0.05):
    return BackendStack(
        switchable,
        [
            lambda inner: CircuitBreakerLayer(
                inner,
                policy=CircuitBreakerPolicy(
                    window=4, failure_threshold=2, reset_timeout=reset_timeout
                ),
            ),
            # Retries above the breaker: the first transient faults are
            # retried (tripping the window), then the open-circuit fast-fail
            # passes straight through to the scheduler.
            lambda inner: UnreliableLayer(inner, max_retries=3, retry_backoff=0.0),
        ],
    )


@pytest.fixture()
def healthy_backend(tiny_table):
    return engine_stack(
        tiny_table, k=2, ranking=StaticScoreRanking(), count_mode=CountMode.EXACT
    )


@pytest.fixture()
def switchable(tiny_table):
    raw = engine_stack(
        tiny_table, k=2, ranking=StaticScoreRanking(),
        count_mode=CountMode.EXACT, statistics=False,
    ).top
    return SwitchableBackend(raw)


class TestDegradedParking:
    def test_open_circuit_parks_the_job_instead_of_crashing_run_all(
        self, tiny_table, healthy_backend, switchable
    ):
        service = SamplingService(
            {
                "good": healthy_backend,
                "bad": guarded_stack(tiny_table, switchable, reset_timeout=60.0),
            }
        )
        good_job = service.submit(HDSamplerConfig(n_samples=2, seed=1), backend="good")
        bad_job = service.submit(HDSamplerConfig(n_samples=2, seed=1), backend="bad")
        switchable.failing = True
        results = service.run_all()
        # The healthy workload finished; the sick one parked, not crashed.
        assert results[good_job.job_id].sample_count == 2
        assert good_job.done
        assert bad_job.degraded and not bad_job.done
        assert service.degraded_jobs() == (bad_job,)
        assert bad_job.state_label == "degraded"
        assert "degraded" in service.describe()

    def test_parked_job_revives_and_completes_after_recovery(
        self, tiny_table, switchable
    ):
        service = SamplingService(guarded_stack(tiny_table, switchable, reset_timeout=0.05))
        job = service.submit(HDSamplerConfig(n_samples=2, seed=1))
        switchable.failing = True
        service.run_all()
        assert job.degraded
        # The backend heals; the breaker's reset timeout (0.05 s) elapses
        # inside the recovery budget, the scheduler revives the job and
        # drives it to completion in the same call.
        switchable.failing = False
        results = service.run_all(recovery_timeout=5.0)
        assert not job.degraded
        assert job.done
        assert results[job.job_id].sample_count == 2

    def test_zero_recovery_budget_returns_with_jobs_still_parked(
        self, tiny_table, switchable
    ):
        service = SamplingService(guarded_stack(tiny_table, switchable, reset_timeout=60.0))
        job = service.submit(HDSamplerConfig(n_samples=2, seed=1))
        switchable.failing = True
        service.run_all()  # default recovery_timeout=0.0: no waiting
        assert job.degraded and not job.done

    def test_park_uses_the_breaker_retry_hint(self):
        from repro.service.job import SamplingJob  # noqa: F401 — import check

        error = CircuitOpenError(retry_after=3.5)
        assert error.retry_after == pytest.approx(3.5)
        # And with no hint, the default park applies.
        assert DEFAULT_DEGRADED_PARK > 0

    def test_degraded_job_keeps_collected_samples_and_accounting(
        self, tiny_table, switchable
    ):
        service = SamplingService(guarded_stack(tiny_table, switchable, reset_timeout=60.0))
        job = service.submit(HDSamplerConfig(n_samples=20, seed=2))
        service.run_all(max_steps=5)  # healthy warm-up: some progress
        progressed = job.samples_collected
        switchable.failing = True
        service.run_all()
        assert job.degraded
        assert job.samples_collected >= progressed  # nothing was lost
        assert job.queries_issued > 0


class TestDegradedSnapshotRestore:
    def test_degraded_job_round_trips_and_revives(self, tiny_table, switchable):
        import json

        service = SamplingService(guarded_stack(tiny_table, switchable, reset_timeout=0.05))
        job = service.submit(HDSamplerConfig(n_samples=6, seed=3))
        service.run_all(max_steps=2)  # warm-up before the outage
        assert not job.done
        switchable.failing = True
        service.run_all()
        assert job.degraded and not job.done
        collected_before = job.samples_collected

        # The checkpoint records the parking (JSON-serialisably), and the
        # restored job is parked — not paused, not in some undefined state.
        payload = json.loads(json.dumps(job.snapshot()))
        assert payload["degraded"] is not None
        service.forget(job.job_id)
        restored = service.adopt(payload)
        assert restored.degraded
        assert restored.state_label == "degraded"
        assert restored in service.pending_jobs()  # schedulable, so revivable

        # Backend heals: the scheduler revives the restored job and drives it
        # to completion without losing or duplicating the checkpointed samples.
        switchable.failing = False
        results = service.run_all(recovery_timeout=5.0)
        assert not restored.degraded
        assert restored.done
        assert results[restored.job_id].sample_count == 6
        assert restored.samples_collected >= collected_before

    def test_non_degraded_running_checkpoint_still_restores_paused(
        self, tiny_table, switchable
    ):
        service = SamplingService(guarded_stack(tiny_table, switchable))
        job = service.submit(HDSamplerConfig(n_samples=5, seed=4))
        service.run_all(max_steps=2)
        assert not job.degraded
        payload = job.snapshot()
        assert payload["degraded"] is None
        service.forget(job.job_id)
        restored = service.adopt(payload)
        # The pre-existing contract is unchanged: a mid-run checkpoint of a
        # healthy job restores as paused.
        assert not restored.degraded
        assert restored.state.value == "paused"

"""Tests for the job-oriented service API: SamplingService and SamplingJob."""

import json

import pytest

from repro.core.config import HDSamplerConfig
from repro.core.session import SessionState
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.datasets.boolean import BooleanConfig, generate_boolean_table
from repro.exceptions import ConfigurationError, SessionStateError, UnknownBackendError, UnknownJobError
from repro.service import SamplingJob, SamplingService


@pytest.fixture()
def boolean_interface():
    """A correlated boolean database: repeated sub-queries make the cache bite."""
    table = generate_boolean_table(
        BooleanConfig(
            n_rows=1_000, n_attributes=8, distribution="correlated",
            probability=0.6, skew=0.7, seed=41,
        )
    )
    return HiddenDatabaseInterface(table, k=15, seed=0)


def _config(n_samples: int, seed: int = 5, **kwargs) -> HDSamplerConfig:
    return HDSamplerConfig(
        n_samples=n_samples, tradeoff=TradeoffSlider(0.9), seed=seed, **kwargs
    )


class TestServiceBasics:
    def test_single_backend_service_submits_and_tracks_jobs(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(5))
        assert job.state is SessionState.READY
        assert service.job(job.job_id) is job
        assert job in service.jobs
        assert len(service) == 1
        assert job.backend == service.backend_names[0]

    def test_named_backends(self, tiny_interface, figure1_interface):
        service = SamplingService({"tiny": tiny_interface, "figure1": figure1_interface})
        assert service.backend_names == ("tiny", "figure1")
        job = service.submit(_config(3), backend="figure1")
        assert job.backend == "figure1"
        assert job.schema == figure1_interface.schema
        with pytest.raises(UnknownBackendError):
            service.submit(_config(3), backend="nope")

    def test_add_backend_and_duplicate_rejection(self, tiny_interface, figure1_interface):
        service = SamplingService(tiny_interface)
        service.add_backend("figure1", figure1_interface)
        assert "figure1" in service.backend_names
        with pytest.raises(ConfigurationError):
            service.add_backend("figure1", figure1_interface)

    def test_unknown_and_duplicate_job_ids(self, tiny_interface):
        service = SamplingService(tiny_interface)
        service.submit(_config(3), job_id="alpha")
        with pytest.raises(ConfigurationError):
            service.submit(_config(3), job_id="alpha")
        with pytest.raises(UnknownJobError):
            service.job("missing")
        service.forget("alpha")
        with pytest.raises(UnknownJobError):
            service.job("alpha")

    def test_empty_backend_mapping_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplingService({})


class TestStreaming:
    def test_stream_yields_samples_incrementally(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(8, seed=2))
        collected = []
        for sample in job.stream():
            collected.append(sample)
            # Incrementality: the output module has exactly the samples
            # yielded so far — nothing is buffered to the end.
            assert job.samples_collected == len(collected)
        assert len(collected) == 8
        assert job.state is SessionState.COMPLETED

    def test_stream_honours_the_kill_switch(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(1_000, seed=3))
        seen = 0
        for _ in job.stream():
            seen += 1
            if seen == 4:
                job.stop()
        assert job.state is SessionState.STOPPED
        assert job.samples_collected == 4

    def test_stream_respects_limit_and_can_continue(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(10, seed=4))
        first = list(job.stream(limit=3))
        assert len(first) == 3
        assert not job.done
        rest = list(job.stream())
        assert len(first) + len(rest) == 10
        assert job.state is SessionState.COMPLETED

    def test_stream_stops_at_a_pause_and_resumes(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(10, seed=5))
        seen = []
        for sample in job.stream():
            seen.append(sample)
            if len(seen) == 2:
                job.pause()
        assert job.state is SessionState.PAUSED
        assert len(seen) == 2
        job.resume()
        seen.extend(job.stream())
        assert len(seen) == 10
        assert job.state is SessionState.COMPLETED


class TestExtend:
    def test_extend_reuses_the_history_cache(self, boolean_interface):
        """The warm continuation must beat a cold run of the same extra count."""
        base, extra = 150, 50
        table = boolean_interface  # alias for clarity: same physical database

        service = SamplingService(table)
        job = service.submit(_config(base, seed=9))
        job.run()
        assert job.state is SessionState.COMPLETED
        queries_before = job.queries_issued

        job.extend(extra)
        result = job.run()
        assert result.sample_count == base + extra
        warm_delta = job.queries_issued - queries_before

        # Cold reference: a fresh job collecting only the extra count against
        # an identical fresh interface (so budgets/counters don't interfere).
        cold_interface = HiddenDatabaseInterface(table.table, k=table.k, seed=0)
        cold_job = SamplingService(cold_interface).submit(_config(extra, seed=9))
        cold_job.run()
        cold_queries = cold_job.queries_issued

        assert cold_job.samples_collected == extra
        assert warm_delta < cold_queries

    def test_extend_after_stop_clears_the_kill_switch(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(100, seed=10))
        for _ in job.stream(limit=3):
            pass
        job.stop()
        list(job.stream())  # drains to STOPPED
        assert job.state is SessionState.STOPPED
        job.extend(2)
        assert not job.done
        job.run()
        assert job.done

    def test_extend_rejects_non_positive(self, tiny_interface):
        job = SamplingService(tiny_interface).submit(_config(5))
        with pytest.raises(ConfigurationError):
            job.extend(0)

    def test_extend_with_a_spent_attempt_cap_raises_loudly(self, tiny_interface):
        job = SamplingService(tiny_interface).submit(
            _config(10_000, seed=60, max_attempts=20)
        )
        job.run()
        assert job.state is SessionState.EXHAUSTED
        with pytest.raises(ConfigurationError, match="attempt cap"):
            job.extend(5)

    def test_extend_with_extra_attempts_grants_a_fresh_attempt_budget(self, tiny_interface):
        job = SamplingService(tiny_interface).submit(
            _config(10_000, seed=61, max_attempts=15)
        )
        job.run()
        assert job.state is SessionState.EXHAUSTED
        collected_before = job.samples_collected
        job.extend(2, extra_attempts=200).run()
        assert job.samples_collected > collected_before
        assert job.config.max_attempts == 15 + 200


class TestSnapshotRestore:
    def test_snapshot_restore_round_trip_equality(self, boolean_interface):
        service = SamplingService(boolean_interface)
        job = service.submit(_config(30, seed=11), job_id="checkpointed")
        for _ in job.stream(limit=12):
            pass
        job.pause()

        payload = json.dumps(job.snapshot())          # genuinely JSON
        restored = SamplingJob.restore(json.loads(payload), boolean_interface)

        assert restored.job_id == "checkpointed"
        assert restored.state is SessionState.PAUSED
        assert restored.samples_collected == job.samples_collected
        assert restored.session.attempts == job.session.attempts
        assert restored.config == job.config
        assert [s.tuple_id for s in restored.output.samples] == [
            s.tuple_id for s in job.output.samples
        ]
        # Round-trip equality: snapshotting the restored job reproduces the
        # original checkpoint bit for bit.
        assert restored.snapshot() == json.loads(payload)

    def test_restore_carries_the_warm_cache(self, boolean_interface):
        service = SamplingService(boolean_interface)
        job = service.submit(_config(40, seed=12))
        for _ in job.stream(limit=20):
            pass
        job.pause()
        cache_size = len(job.session.generator.history)

        restored = SamplingJob.restore(job.snapshot(), boolean_interface)
        assert cache_size > 0
        assert len(restored.session.generator.history) == cache_size

        restored.resume()
        restored.run()
        assert restored.state is SessionState.COMPLETED
        assert restored.samples_collected == 40

    def test_restore_through_a_service_adopt(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(6, seed=13), job_id="migrating")
        job.run()
        snapshot = job.snapshot()

        other = SamplingService(tiny_interface)
        adopted = other.adopt(snapshot)
        assert adopted.job_id == "migrating"
        assert other.job("migrating") is adopted
        assert adopted.done
        assert adopted.samples_collected == 6

    def test_restore_preserves_deduplication_state(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(8, seed=62, deduplicate=True))
        for _ in job.stream(limit=4):
            pass
        job.pause()
        restored = SamplingJob.restore(job.snapshot(), tiny_interface)
        restored.resume()
        restored.run()
        tuple_ids = [sample.tuple_id for sample in restored.output.samples]
        assert len(tuple_ids) == len(set(tuple_ids))

    def test_restore_keeps_query_accounting_consistent(self, boolean_interface):
        service = SamplingService(boolean_interface)
        job = service.submit(_config(30, seed=63))
        for _ in job.stream(limit=15):
            pass
        job.pause()
        checkpoint_queries = job.queries_issued
        checkpoint_attempts = job.session.attempts
        assert checkpoint_queries > 0

        restored = SamplingJob.restore(job.snapshot(), boolean_interface)
        assert restored.queries_issued == checkpoint_queries
        restored.resume()
        result = restored.run()
        # Pre-checkpoint queries and attempts both survive, so the per-sample
        # cost is computed over the job's whole life, not just the tail.
        assert result.queries_issued >= checkpoint_queries
        assert result.attempts >= checkpoint_attempts
        assert result.queries_per_sample >= 1.0

    def test_adopt_refuses_to_replace_a_registered_job(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(3, seed=64), job_id="busy")
        with pytest.raises(ConfigurationError):
            service.adopt(job.snapshot())

    def test_auto_ids_skip_adopted_ids(self, tiny_interface):
        donor = SamplingService(tiny_interface)
        snapshot = donor.submit(_config(3, seed=65)).snapshot()
        fresh = SamplingService(tiny_interface)
        adopted = fresh.adopt(snapshot)
        # The fresh service's counter must not collide with the adopted id.
        submitted = fresh.submit(_config(3, seed=66))
        assert submitted.job_id != adopted.job_id
        assert len(fresh) == 2

    def test_restore_rejects_unknown_versions(self, tiny_interface):
        job = SamplingService(tiny_interface).submit(_config(2, seed=14))
        snapshot = job.snapshot()
        snapshot["version"] = 99
        with pytest.raises(ConfigurationError):
            SamplingJob.restore(snapshot, tiny_interface)

    def test_histograms_rebuild_from_restored_samples(self, tiny_interface):
        service = SamplingService(tiny_interface)
        job = service.submit(_config(10, seed=15))
        job.run()
        restored = SamplingJob.restore(job.snapshot(), tiny_interface)
        assert restored.output.histogram("make").counts == job.output.histogram("make").counts


class TestRunAll:
    def test_run_all_completes_every_job(self, tiny_interface):
        service = SamplingService(tiny_interface)
        jobs = [service.submit(_config(5, seed=20 + i)) for i in range(3)]
        results = service.run_all()
        assert set(results) == {job.job_id for job in jobs}
        for job in jobs:
            assert job.state is SessionState.COMPLETED
            assert results[job.job_id].sample_count == 5

    def test_run_all_is_round_robin_fair(self, tiny_interface):
        """Active jobs' attempt counts never drift apart by more than one."""
        service = SamplingService(tiny_interface)
        jobs = [service.submit(_config(10_000, seed=30 + i)) for i in range(3)]
        service.run_all(max_steps=31)
        attempts = [job.session.attempts for job in jobs]
        assert sum(attempts) == 31
        assert max(attempts) - min(attempts) <= 1

    def test_run_all_skips_paused_jobs(self, tiny_interface):
        service = SamplingService(tiny_interface)
        active = service.submit(_config(4, seed=35))
        parked = service.submit(_config(4, seed=36))
        parked.pause()
        service.run_all()
        assert active.state is SessionState.COMPLETED
        assert parked.state is SessionState.PAUSED
        assert parked.samples_collected == 0
        parked.resume()
        service.run_all()
        assert parked.state is SessionState.COMPLETED

    def test_stop_all_throws_every_kill_switch(self, tiny_interface):
        service = SamplingService(tiny_interface)
        jobs = [service.submit(_config(10_000, seed=40 + i)) for i in range(3)]
        service.run_all(max_steps=9)
        service.stop_all()
        service.run_all()
        assert all(job.state is SessionState.STOPPED for job in jobs)

    def test_describe_lists_every_job(self, tiny_interface):
        service = SamplingService(tiny_interface)
        assert service.describe() == "no jobs submitted"
        job = service.submit(_config(3, seed=50), job_id="alpha")
        job.run()
        text = service.describe()
        assert "alpha" in text and "completed" in text

    def test_backend_statistics_surfaces_the_layer_stack(self, tiny_table, tiny_interface):
        from repro.backends import sharded_stack
        from repro.database.limits import QueryBudget

        stack = sharded_stack(tiny_table, 2, k=2, budget=QueryBudget(limit=99), history=True)
        service = SamplingService({"classic": tiny_interface, "sharded": stack})
        service.submit(_config(3, seed=60), backend="sharded").run()

        report = service.backend_statistics("sharded")
        assert report["access_path"].endswith("ShardRouter")
        assert report["statistics"]["queries_issued"] > 0
        assert report["budget"]["limit"] == 99
        assert report["history"]["submissions"] >= report["statistics"]["queries_issued"]

        classic = service.backend_statistics("classic")
        assert classic["access_path"].endswith("QueryEngineBackend")
        assert classic["history"] is None


class TestSharedHistory:
    """One lock-striped HistoryLayer per backend, shared by every job on it."""

    def test_jobs_share_one_history_layer_per_backend(self, tiny_interface):
        service = SamplingService(tiny_interface)
        first = service.submit(_config(3, seed=70))
        second = service.submit(_config(3, seed=71))
        shared = service.shared_history()
        assert shared is not None
        assert first.session.generator.scoped._database is shared
        assert second.session.generator.scoped._database is shared

    def test_second_job_accumulates_the_firsts_savings(self, boolean_interface):
        """The ROADMAP payoff: a job re-running the same workload on a warm
        service pays measurably fewer interface queries."""
        shared_service = SamplingService(boolean_interface)
        shared_service.submit(_config(8, seed=9)).run()
        issued_after_first = boolean_interface.statistics.queries_issued
        shared_service.submit(_config(8, seed=9)).run()
        shared_delta = boolean_interface.statistics.queries_issued - issued_after_first

        cold = SamplingService(boolean_interface, shared_history=False)
        before = boolean_interface.statistics.queries_issued
        cold.submit(_config(8, seed=9)).run()
        cold_delta = boolean_interface.statistics.queries_issued - before

        assert shared_delta == 0  # an identical workload is replayed entirely
        assert cold_delta > 0
        assert shared_service.shared_history().statistics.saved > 0

    def test_shared_history_is_per_backend_not_per_service(self, tiny_interface, figure1_interface):
        service = SamplingService({"tiny": tiny_interface, "figure1": figure1_interface})
        assert service.shared_history("tiny") is not service.shared_history("figure1")
        assert service.shared_history("tiny") is service.shared_history("tiny")

    def test_backend_with_own_history_layer_is_not_double_wrapped(self, tiny_table):
        from repro.backends import engine_stack

        stack = engine_stack(tiny_table, k=2, history=True)
        service = SamplingService(stack)
        assert service.shared_history() is stack.history
        job = service.submit(_config(2, seed=72))
        assert job.session.generator.scoped._database is stack

    def test_sharing_can_be_disabled(self, tiny_interface):
        service = SamplingService(tiny_interface, shared_history=False)
        assert service.shared_history() is None
        job = service.submit(_config(2, seed=73))
        assert job.session.generator.scoped._database is tiny_interface

    def test_backend_statistics_surface_shared_savings(self, tiny_interface):
        service = SamplingService(tiny_interface)
        service.submit(_config(3, seed=74)).run()
        service.submit(_config(3, seed=74)).run()
        report = service.backend_statistics()
        assert report["shared_history"] is not None
        assert report["shared_history"]["submissions"] > 0
        assert report["shared_history"]["saved"] > 0

    def test_dashboard_line_renders_shared_savings(self, tiny_interface):
        from repro.frontend.dashboard import Dashboard

        service = SamplingService(tiny_interface)
        job = service.submit(_config(3, seed=75))
        dashboard = Dashboard(job, backend=service)
        job.run()
        line = dashboard.render_backend_line()
        assert "shared history saved" in line

    def test_results_identical_with_and_without_sharing(self, tiny_interface):
        """Sharing changes round-trip accounting, never answers: the sampled
        tuples of a job are byte-identical either way."""
        with_sharing = SamplingService(tiny_interface).submit(_config(6, seed=76)).run()
        without = SamplingService(tiny_interface, shared_history=False).submit(
            _config(6, seed=76)
        ).run()
        assert [s.tuple_id for s in with_sharing.samples] == [
            s.tuple_id for s in without.samples
        ]

    def test_no_history_jobs_bypass_the_shared_layer(self, tiny_interface):
        """A use_history=False job must measure genuinely uncached round-trips:
        neither its own cache NOR the service's shared layer may absorb them."""
        service = SamplingService(tiny_interface)
        spec = _config(4, seed=77, use_history=False)
        job = service.submit(spec)
        assert job.session.generator.scoped._database is tiny_interface
        job.run()
        before = tiny_interface.statistics.queries_issued
        rerun = service.submit(_config(4, seed=77, use_history=False))
        rerun.run()
        # The identical workload re-pays every interface query.
        assert tiny_interface.statistics.queries_issued - before == job.queries_issued

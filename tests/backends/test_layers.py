"""Unit tests for the composable backend layers and the stack invariants."""

import pytest

from repro.backends import (
    BackendStack,
    BudgetLayer,
    CountModeLayer,
    HistoryLayer,
    QueryEngineBackend,
    StatisticsLayer,
    UnreliableLayer,
    engine_stack,
    web_stack,
)
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking
from repro.exceptions import (
    ConfigurationError,
    InterfaceError,
    QueryBudgetExceededError,
    RateLimitedError,
    TransientBackendError,
)
from repro.web.client import WebFormClient
from repro.web.server import HiddenWebSite


@pytest.fixture()
def raw(tiny_table):
    return QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())


@pytest.fixture()
def any_query(tiny_schema):
    return ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})


class TestRawAdapters:
    def test_engine_backend_always_reports_exact_counts(self, raw, tiny_schema):
        response = raw.submit(ConjunctiveQuery.empty(tiny_schema))
        assert response.reported_count == 8
        assert response.overflow and len(response.tuples) == 2

    def test_engine_backend_does_no_accounting(self, raw, any_query):
        raw.submit(any_query)
        assert not hasattr(raw, "statistics")


class TestBudgetLayer:
    def test_charges_before_touching_the_backend(self, raw, tiny_schema):
        layer = BudgetLayer(raw, budget=QueryBudget(limit=1))
        layer.submit(ConjunctiveQuery.empty(tiny_schema))
        with pytest.raises(QueryBudgetExceededError):
            layer.submit(ConjunctiveQuery.empty(tiny_schema))
        assert layer.budget.issued == 1

    def test_defaults_to_unlimited(self, raw, any_query):
        layer = BudgetLayer(raw)
        for _ in range(5):
            layer.submit(any_query)
        assert layer.budget.issued == 5 and layer.budget.remaining is None


class TestStatisticsLayer:
    def test_counts_answered_queries_by_outcome(self, raw, tiny_schema):
        layer = StatisticsLayer(raw)
        layer.submit(ConjunctiveQuery.empty(tiny_schema))                       # overflow
        layer.submit(ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"}))  # valid
        layer.submit(ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Honda", "price": "0-10000"}))               # empty
        stats = layer.statistics.as_dict()
        assert stats["queries_issued"] == 3
        assert stats["overflow_results"] == stats["valid_results"] == stats["empty_results"] == 1

    def test_failed_submissions_are_not_counted(self, raw, tiny_schema):
        layer = StatisticsLayer(BudgetLayer(raw, budget=QueryBudget(limit=0)))
        with pytest.raises(QueryBudgetExceededError):
            layer.submit(ConjunctiveQuery.empty(tiny_schema))
        assert layer.statistics.queries_issued == 0


class TestSingleCounterInvariant:
    """Regression for the duplicated query accounting of the pre-stack world."""

    def test_two_statistics_layers_in_one_stack_raise(self, raw):
        with pytest.raises(ConfigurationError):
            BackendStack(raw, [StatisticsLayer, BudgetLayer, StatisticsLayer])

    def test_wrapping_a_web_client_with_another_counter_raises(self, tiny_table, tiny_schema):
        # A WebFormClient already owns the single StatisticsLayer of its
        # access path; composing a second counter around it used to silently
        # double-count every issued query and is now a construction error.
        site = HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        client = WebFormClient(site, tiny_schema)
        with pytest.raises(ConfigurationError):
            BackendStack(client, [StatisticsLayer])

    def test_wrapping_the_classic_interface_with_another_counter_raises(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            BackendStack(tiny_interface, [StatisticsLayer])

    def test_one_query_is_counted_exactly_once_end_to_end(self, tiny_table, tiny_schema, any_query):
        # Serve the site from a raw (counter-free) backend: the client's own
        # layer is then the only statistics counter on the whole path.
        site = HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        client = WebFormClient(site, tiny_schema)
        stack = BackendStack(client, [BudgetLayer])  # extra layers stay legal
        stack.submit(any_query)
        assert client.statistics.queries_issued == 1


class TestCountModeLayer:
    def test_none_hides_the_exact_count(self, raw, any_query):
        layer = CountModeLayer(raw, mode=CountMode.NONE)
        assert layer.submit(any_query).reported_count is None

    def test_exact_passes_the_count_through(self, raw, tiny_schema):
        layer = CountModeLayer(raw, mode=CountMode.EXACT)
        assert layer.submit(ConjunctiveQuery.empty(tiny_schema)).reported_count == 8

    def test_noisy_is_bounded_and_deterministic_per_seed(self, tiny_table, tiny_schema):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})

        def build():
            return CountModeLayer(
                QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()),
                mode=CountMode.NOISY, noise=0.5, seed=42,
            )

        reported = build().submit(query).reported_count
        assert 2 <= reported <= 6  # 4 ± 50%
        assert build().submit(query).reported_count == reported

    def test_noisy_zero_stays_zero(self, raw, tiny_schema):
        layer = CountModeLayer(raw, mode=CountMode.NOISY, seed=1)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "price": "0-10000"})
        assert layer.submit(query).reported_count == 0

    def test_noisy_never_rounds_a_nonempty_count_to_zero(self, tiny_table, tiny_schema):
        # Regression: with large relative noise a true count of 1 used to
        # round to 0, so count-leveraging samplers treated a live subtree as
        # provably empty and pruned it.  Now a non-empty result always
        # reports >= 1 under every seed.
        query = ConjunctiveQuery.from_assignment(
            tiny_schema, {"make": "Ford", "price": "20000-40000"})  # exactly one match
        for seed in range(50):
            layer = CountModeLayer(
                QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()),
                mode=CountMode.NOISY, noise=0.99, seed=seed,
            )
            reported = layer.submit(query).reported_count
            assert reported >= 1, f"seed {seed} reported {reported} for a non-empty result"

    def test_needs_an_exact_count_beneath_it(self, raw, any_query):
        hidden = CountModeLayer(raw, mode=CountMode.NONE)
        shaped = CountModeLayer(hidden, mode=CountMode.EXACT)
        with pytest.raises(InterfaceError):
            shaped.submit(any_query)

    def test_negative_noise_rejected(self, raw):
        with pytest.raises(InterfaceError):
            CountModeLayer(raw, noise=-0.1)


class TestUnreliableLayer:
    def test_rate_limit_self_heals_with_retries(self, raw, any_query):
        layer = UnreliableLayer(raw, rate_limit_every=2, max_retries=2)
        for _ in range(6):
            assert layer.submit(any_query).valid
        assert layer.statistics.rate_limited > 0
        assert layer.statistics.retries == layer.statistics.rate_limited
        assert layer.statistics.gave_up == 0

    def test_without_retries_the_fault_surfaces(self, raw, any_query):
        layer = UnreliableLayer(raw, rate_limit_every=1, max_retries=0)
        with pytest.raises(RateLimitedError):
            layer.submit(any_query)
        assert layer.statistics.gave_up == 1

    def test_transient_failures_are_deterministic_per_seed(self, raw, any_query):
        def run(seed):
            layer = UnreliableLayer(raw, failure_rate=0.5, max_retries=5, seed=seed)
            for _ in range(20):
                layer.submit(any_query)
            return layer.statistics.as_dict()

        assert run(7) == run(7)
        assert run(7)["transient_failures"] > 0

    def test_exhausted_retries_raise_transient_error(self, raw, any_query):
        layer = UnreliableLayer(raw, failure_rate=0.99, max_retries=1, seed=3)
        with pytest.raises(TransientBackendError):
            for _ in range(50):
                layer.submit(any_query)

    def test_parameter_validation(self, raw):
        with pytest.raises(InterfaceError):
            UnreliableLayer(raw, failure_rate=1.0)
        with pytest.raises(InterfaceError):
            UnreliableLayer(raw, rate_limit_every=0)
        with pytest.raises(InterfaceError):
            UnreliableLayer(raw, max_retries=-1)
        with pytest.raises(InterfaceError):
            UnreliableLayer(raw, retry_backoff=-0.1)
        with pytest.raises(InterfaceError):
            UnreliableLayer(raw, latency=-1.0)


class _FlakyBackend:
    """A backend that raises real transient faults before finally answering."""

    def __init__(self, inner, failures_per_query=2, error=TransientBackendError):
        self.inner = inner
        self.failures_per_query = failures_per_query
        self._error = error
        self._failures_left = failures_per_query

    @property
    def schema(self):
        return self.inner.schema

    @property
    def k(self):
        return self.inner.k

    def submit(self, query):
        if self._failures_left > 0:
            self._failures_left -= 1
            raise self._error()
        self._failures_left = self.failures_per_query
        return self.inner.submit(query)


class TestUnreliableLayerRetriesRealFaults:
    """Regression: only *injected* faults used to be retried — a transient
    error raised by the inner backend (now reachable via RemoteBackend)
    propagated immediately, defeating the whole retry layer."""

    def test_inner_transient_faults_are_retried_and_counted(self, raw, any_query):
        layer = UnreliableLayer(_FlakyBackend(raw, failures_per_query=2), max_retries=3)
        for _ in range(4):
            assert layer.submit(any_query).valid
        stats = layer.statistics
        assert stats.backend_transient_failures == 8   # 2 per successful submission
        assert stats.retries == 8
        assert stats.gave_up == 0
        assert stats.transient_failures == 0           # nothing was injected

    def test_inner_rate_limits_are_retried_and_counted_separately(self, raw, any_query):
        flaky = _FlakyBackend(raw, failures_per_query=1, error=RateLimitedError)
        layer = UnreliableLayer(flaky, max_retries=2)
        assert layer.submit(any_query).valid
        assert layer.statistics.backend_rate_limited == 1
        assert layer.statistics.backend_transient_failures == 0
        assert layer.statistics.rate_limited == 0      # nothing was injected

    def test_exhausted_retries_surface_the_real_fault(self, raw, any_query):
        layer = UnreliableLayer(_FlakyBackend(raw, failures_per_query=99), max_retries=2)
        with pytest.raises(TransientBackendError):
            layer.submit(any_query)
        assert layer.statistics.gave_up == 1
        assert layer.statistics.backend_transient_failures == 3  # initial try + 2 retries

    def test_with_zero_retries_the_real_fault_propagates(self, raw, any_query):
        layer = UnreliableLayer(_FlakyBackend(raw, failures_per_query=1), max_retries=0)
        with pytest.raises(TransientBackendError):
            layer.submit(any_query)

    def test_non_transient_errors_are_never_retried(self, tiny_table, tiny_schema, any_query):
        from repro.backends import BudgetLayer

        raw = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        exhausted = BudgetLayer(raw, budget=QueryBudget(limit=0))
        layer = UnreliableLayer(exhausted, max_retries=5)
        with pytest.raises(QueryBudgetExceededError):
            layer.submit(any_query)
        assert layer.statistics.attempts == 1          # no retry of a permanent error

    def test_mixed_injected_and_real_faults_heal_together(self, raw, any_query):
        layer = UnreliableLayer(
            _FlakyBackend(raw, failures_per_query=1),
            rate_limit_every=3, max_retries=4,
        )
        for _ in range(5):
            assert layer.submit(any_query).valid
        stats = layer.statistics
        assert stats.backend_transient_failures > 0
        assert stats.rate_limited > 0
        assert stats.gave_up == 0


class TestHistoryOnTheWebPath:
    """The lifted history layer must save *page fetches*, not just queries."""

    @pytest.fixture()
    def site(self, tiny_table):
        return HiddenWebSite(
            QueryEngineBackend(
                tiny_table, k=2, ranking=StaticScoreRanking(), display_columns=("score",)
            )
        )

    def test_exact_repeat_fetches_no_page(self, site, tiny_schema):
        client = WebFormClient(site, tiny_schema, history=True)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        fetched_before = site.pages_served
        first = client.submit(query)
        second = client.submit(query)
        assert second == first
        assert site.pages_served == fetched_before + 1  # one result page, not two
        assert client.statistics.queries_issued == 1    # counts actual fetches
        assert client.history is not None
        assert client.history.statistics.exact_hits == 1

    def test_subset_inference_fetches_no_page(self, site, tiny_schema):
        client = WebFormClient(site, tiny_schema, history=True)
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        narrow = broad.specialise("color", "red")
        client.submit(broad)  # valid: both Hondas fit in k=2
        fetched = site.pages_served
        response = client.submit(narrow)
        assert site.pages_served == fetched
        assert [t.tuple_id for t in response.tuples] == [4]
        assert client.history.statistics.inferred == 1

    def test_history_off_by_default_keeps_legacy_contract(self, site, tiny_schema):
        client = WebFormClient(site, tiny_schema)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        client.submit(query)
        client.submit(query)
        assert client.history is None
        assert client.statistics.queries_issued == 2


class TestBackendStack:
    def test_engine_stack_layers_and_accessors(self, tiny_table):
        stack = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(),
            count_mode=CountMode.EXACT, budget=QueryBudget(limit=10), history=True,
        )
        assert stack.statistics is not None and stack.budget is not None
        assert stack.history is not None and stack.count_mode_layer is not None
        assert stack.describe() == (
            "HistoryLayer → StatisticsLayer → BudgetLayer → CountModeLayer → QueryEngineBackend"
        )

    def test_history_hits_charge_no_budget_and_count_no_queries(self, tiny_table, tiny_schema):
        stack = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(),
            budget=QueryBudget(limit=10), history=True,
        )
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        stack.submit(query)
        stack.submit(query)
        assert stack.budget.issued == 1
        assert stack.statistics.queries_issued == 1

    def test_web_stack_over_a_site(self, tiny_table, tiny_schema, any_query):
        site = HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        stack = web_stack(site, tiny_schema)
        assert stack.k == 2
        assert stack.submit(any_query).valid
        assert stack.statistics.queries_issued == 1

    def test_facades_expose_their_stack(self, tiny_interface):
        assert tiny_interface.stack.statistics is tiny_interface.statistics
        assert tiny_interface.stack.budget is tiny_interface.budget

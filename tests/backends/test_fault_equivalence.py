"""Chaos must be invisible: a retried faulty stack samples byte-identically.

The resilience tier's core correctness property — the whole reason retries,
breakers and deadlines can be layered under a *reproducibility* project: a
stack whose backend fails constantly but is healed by retries must hand the
sampler the exact same response stream as a clean stack, so the accepted
sample sequence (ids, values, probabilities, every byte of the result) is
identical on shared seeds.  Hypothesis drives the property across fault
rates, seeds and sampler configurations.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backends import BackendStack, UnreliableLayer, engine_stack
from repro.core.config import HDSamplerConfig
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import CountMode
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking
from repro.datasets.vehicles import (
    VehiclesConfig,
    default_vehicles_ranking,
    generate_vehicles_table,
)
from repro.service import SamplingService


def _clean_stack(table, ranking):
    return engine_stack(table, 30, ranking=ranking, statistics=False)


def _faulty_stack(table, ranking, failure_rate, chaos_seed, rate_limit_every=None):
    clean = _clean_stack(table, ranking)
    return BackendStack(
        clean.top,
        [
            lambda inner: UnreliableLayer(
                inner,
                failure_rate=failure_rate,
                rate_limit_every=rate_limit_every,
                # Enough to outlast any fault streak: at the 0.85 rate cap a
                # 50-retry budget still gave up ~2e-4 per query — real odds
                # over hundreds of queries × 8 examples.  At 150 the per-query
                # odds are ~1e-11, safely out of flake territory.
                max_retries=150,
                retry_backoff=0.0,
                seed=chaos_seed,
            )
        ],
    )


def _sample_fingerprint(result):
    return [
        (
            sample.tuple_id,
            tuple(sorted(sample.values.items())),
            sample.selection_probability,
            sample.acceptance_probability,
        )
        for sample in result.samples
    ]


@settings(deadline=None, max_examples=8)
@given(
    failure_rate=st.floats(min_value=0.3, max_value=0.85),
    chaos_seed=st.integers(min_value=0, max_value=2**32 - 1),
    sampler_seed=st.integers(min_value=0, max_value=999),
)
def test_high_fault_stack_samples_byte_identically(failure_rate, chaos_seed, sampler_seed):
    table = generate_vehicles_table(VehiclesConfig(n_rows=400, seed=11))
    ranking = default_vehicles_ranking()
    config = HDSamplerConfig(n_samples=4, seed=sampler_seed)

    clean_result = SamplingService(_clean_stack(table, ranking)).submit(config).run()
    faulty = _faulty_stack(table, ranking, failure_rate, chaos_seed)
    faulty_result = SamplingService(faulty).submit(config).run()

    assert _sample_fingerprint(faulty_result) == _sample_fingerprint(clean_result)
    # The chaos really happened — the equivalence is not vacuous.
    retry_layer = faulty.layer(UnreliableLayer)
    assert retry_layer.statistics.transient_failures > 0
    assert retry_layer.statistics.gave_up == 0


@settings(deadline=None, max_examples=6)
@given(chaos_seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_rate_limits_and_faults_together_stay_invisible(chaos_seed):
    table = generate_vehicles_table(VehiclesConfig(n_rows=300, seed=7))
    ranking = default_vehicles_ranking()
    config = HDSamplerConfig(
        n_samples=3, seed=5, tradeoff=TradeoffSlider(0.3)
    )

    clean_result = SamplingService(_clean_stack(table, ranking)).submit(config).run()
    faulty = _faulty_stack(
        table, ranking, failure_rate=0.5, chaos_seed=chaos_seed, rate_limit_every=3
    )
    faulty_result = SamplingService(faulty).submit(config).run()

    assert _sample_fingerprint(faulty_result) == _sample_fingerprint(clean_result)
    assert faulty_result.queries_issued == clean_result.queries_issued
    retry_layer = faulty.layer(UnreliableLayer)
    assert retry_layer.statistics.rate_limited > 0


def test_scripted_schedule_is_deterministic_run_to_run(tiny_table):
    """Two identically-scripted stacks produce identical responses *and*
    identical statistics — the property that makes chaos tests replayable."""
    def build():
        clean = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(),
            count_mode=CountMode.EXACT, statistics=False,
        )
        return BackendStack(
            clean.top,
            [
                lambda inner: UnreliableLayer(
                    inner,
                    max_retries=4,
                    retry_backoff=0.0,
                    schedule=["transient", "ok", "drop", "rate_limit:0", "ok"] * 4,
                )
            ],
        )

    first, second = build(), build()
    queries = [ConjunctiveQuery.empty(tiny_table.schema)] * 6
    assert [first.submit(q) for q in queries] == [second.submit(q) for q in queries]
    assert first.layer(UnreliableLayer).statistics == second.layer(UnreliableLayer).statistics

"""The stack must be indistinguishable from the access paths it replaced.

Three equivalence obligations, each checked response-for-response:

* a full ``engine_stack`` (and the :class:`HiddenDatabaseInterface` facade
  over it) answers exactly like a frozen copy of the pre-refactor monolithic
  interface, across all count modes;
* every sampler configuration × ranking function draws the *identical*
  sample sequence through the facade and through a hand-assembled stack;
* a :class:`ShardRouter` over four partitions sharing one table index
  answers exactly like the unsharded backend — for deterministic workloads,
  for hypothesis-generated random tables, and through a whole sampling run.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._rng import resolve_rng
from repro.backends import QueryEngineBackend, ShardRouter, engine_stack, sharded_stack
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.tradeoff import TradeoffSlider
from repro.database.engine import QueryEngine, QueryOutcome
from repro.database.interface import (
    CountMode,
    HiddenDatabaseInterface,
    InterfaceResponse,
    InterfaceStatistics,
    ReturnedTuple,
)
from repro.database.limits import QueryBudget
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import (
    AttributeWeightedRanking,
    HashRanking,
    RowIdRanking,
    StaticScoreRanking,
)
from repro.database.schema import Attribute, Domain, Schema
from repro.database.table import Table
from repro.service import SamplingService

# ---------------------------------------------------------------------------
# A frozen copy of the pre-refactor HiddenDatabaseInterface, kept verbatim as
# the behavioural oracle: whatever the stack becomes, it must answer like this.
# ---------------------------------------------------------------------------


class LegacyInterfaceOracle:
    """The monolithic interface exactly as it was before the backend stack."""

    def __init__(
        self,
        table,
        k,
        ranking=None,
        count_mode=CountMode.NONE,
        count_noise=0.3,
        budget=None,
        display_columns=(),
        seed=0,
        use_index=True,
    ):
        self._engine = QueryEngine(table, k=k, ranking=ranking, use_index=use_index)
        self._table = table
        self.count_mode = count_mode
        self.count_noise = count_noise
        self.budget = budget if budget is not None else QueryBudget()
        self.display_columns = tuple(display_columns)
        self.statistics = InterfaceStatistics()
        self._rng = resolve_rng(seed)

    @property
    def schema(self):
        return self._table.schema

    @property
    def k(self):
        return self._engine.k

    def submit(self, query):
        self.budget.charge(1)
        result = self._engine.execute(query)
        tuples = tuple(self._returned_tuple(row_id) for row_id in result.returned_row_ids)
        response = InterfaceResponse(
            query=result.query,
            tuples=tuples,
            overflow=result.outcome is QueryOutcome.OVERFLOW,
            reported_count=self._reported_count(result.total_count),
            k=result.k,
        )
        self.statistics.record(response)
        return response

    def _returned_tuple(self, row_id):
        row = self._table[row_id]
        values = {attribute.name: row[attribute.name] for attribute in self._table.schema}
        for column in self.display_columns:
            if column in row:
                values[column] = row[column]
        selectable = self._table.selectable_row(row)
        return ReturnedTuple(tuple_id=row_id, values=values, selectable_values=selectable)

    def _reported_count(self, true_count):
        if self.count_mode is CountMode.NONE:
            return None
        if self.count_mode is CountMode.EXACT:
            return true_count
        if true_count == 0:
            return 0
        spread = self.count_noise * true_count
        noisy = true_count + self._rng.uniform(-spread, spread)
        return max(0, int(round(noisy)))


RANKINGS = {
    "row_id": RowIdRanking,
    "static_score": StaticScoreRanking,
    "hash": lambda: HashRanking("equiv"),
    "weighted": lambda: AttributeWeightedRanking({"price": -0.001, "year": 1.0}),
}

#: The four sampler configurations of the equivalence matrix: the paper's
#: random walk at both ends of the efficiency↔skew slider, the count-aided
#: drill-down, and the brute-force baseline.
SAMPLERS = {
    "walk_low_skew": dict(algorithm=SamplerAlgorithm.RANDOM_WALK, tradeoff=TradeoffSlider(0.1)),
    "walk_efficient": dict(algorithm=SamplerAlgorithm.RANDOM_WALK, tradeoff=TradeoffSlider(0.9)),
    "count_aided": dict(algorithm=SamplerAlgorithm.COUNT_AIDED),
    "brute_force": dict(algorithm=SamplerAlgorithm.BRUTE_FORCE),
}


def _random_queries(schema: Schema, rng: random.Random, count: int):
    queries = [ConjunctiveQuery.empty(schema)]
    for _ in range(count):
        n = rng.randint(1, len(schema))
        attributes = rng.sample(schema.attribute_names, n)
        assignment = {
            name: rng.choice(schema.attribute(name).domain.values) for name in attributes
        }
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


def _sample_fingerprint(result):
    return [
        (s.tuple_id, dict(s.selectable_values), s.selection_probability, s.queries_spent)
        for s in result.samples
    ]


class TestStackMatchesLegacyOracle:
    @pytest.mark.parametrize("count_mode", list(CountMode))
    @pytest.mark.parametrize("ranking_name", sorted(RANKINGS))
    def test_responses_identical_query_for_query(
        self, small_vehicles_table, count_mode, ranking_name
    ):
        build = dict(
            k=25, count_mode=count_mode, count_noise=0.4, seed=99,
            display_columns=("title",),
        )
        oracle = LegacyInterfaceOracle(
            small_vehicles_table, ranking=RANKINGS[ranking_name](), **build
        )
        facade = HiddenDatabaseInterface(
            small_vehicles_table, ranking=RANKINGS[ranking_name](), **build
        )
        stack = engine_stack(
            small_vehicles_table, ranking=RANKINGS[ranking_name](), **build
        )
        rng = random.Random(4)
        for query in _random_queries(small_vehicles_table.schema, rng, 40):
            expected = oracle.submit(query)
            assert facade.submit(query) == expected
            assert stack.submit(query) == expected
        assert facade.statistics.as_dict() == oracle.statistics.as_dict()
        assert stack.statistics.as_dict() == oracle.statistics.as_dict()
        assert stack.budget.issued == oracle.budget.issued

    def test_budget_violation_identical(self, tiny_table, tiny_schema):
        oracle = LegacyInterfaceOracle(tiny_table, k=2, budget=QueryBudget(limit=1))
        stack = engine_stack(tiny_table, k=2, budget=QueryBudget(limit=1))
        query = ConjunctiveQuery.empty(tiny_schema)
        assert stack.submit(query) == oracle.submit(query)
        for database in (oracle, stack):
            with pytest.raises(Exception) as caught:
                database.submit(query)
            assert type(caught.value).__name__ == "QueryBudgetExceededError"
        assert stack.statistics.queries_issued == oracle.statistics.queries_issued == 1


class TestSamplersOverTheStack:
    """All four sampler configs × all four rankings draw identical samples."""

    @pytest.mark.parametrize("sampler_name", sorted(SAMPLERS))
    @pytest.mark.parametrize("ranking_name", sorted(RANKINGS))
    def test_run_is_byte_identical_over_facade_and_stack(
        self, boolean_table, sampler_name, ranking_name
    ):
        count_mode = (
            CountMode.EXACT
            if SAMPLERS[sampler_name]["algorithm"] is SamplerAlgorithm.COUNT_AIDED
            else CountMode.NONE
        )
        config = HDSamplerConfig(
            n_samples=12, seed=17, max_attempts=4_000, **SAMPLERS[sampler_name]
        )

        def run(database):
            return SamplingService(database).submit(config).run()

        facade_result = run(
            HiddenDatabaseInterface(
                boolean_table, k=6, ranking=RANKINGS[ranking_name](), count_mode=count_mode
            )
        )
        stack_result = run(
            engine_stack(
                boolean_table, k=6, ranking=RANKINGS[ranking_name](), count_mode=count_mode
            )
        )
        assert _sample_fingerprint(stack_result) == _sample_fingerprint(facade_result)
        assert stack_result.queries_issued == facade_result.queries_issued
        assert stack_result.sample_count == facade_result.sample_count > 0


class TestShardRouterEquivalence:
    @pytest.mark.parametrize("ranking_name", sorted(RANKINGS))
    def test_four_shards_answer_like_the_unsharded_backend(
        self, small_vehicles_table, ranking_name
    ):
        ranking = RANKINGS[ranking_name]()
        unsharded = QueryEngineBackend(
            small_vehicles_table, k=25, ranking=ranking, display_columns=("title",)
        )
        router = ShardRouter.over_table(
            small_vehicles_table, 4, k=25, ranking=ranking, display_columns=("title",)
        )
        rng = random.Random(11)
        for query in _random_queries(small_vehicles_table.schema, rng, 60):
            assert router.submit(query) == unsharded.submit(query)

    def test_default_merge_key_is_tuple_id_order(self, tiny_table, tiny_schema):
        # No explicit merge_key: tuples merge by tuple id, which matches the
        # unsharded backend whenever the ranking is row-id order (the shard
        # default).  Regression: this construction path used to crash.
        from repro.backends import TableShardBackend

        router = ShardRouter(
            [TableShardBackend(tiny_table, 3, shard, 2) for shard in range(2)]
        )
        unsharded = QueryEngineBackend(tiny_table, k=3)
        for query in _random_queries(tiny_schema, random.Random(5), 15):
            assert router.submit(query) == unsharded.submit(query)

    def test_router_advertises_the_shards_display_columns(self, tiny_table):
        router = ShardRouter.over_table(tiny_table, 3, k=2, display_columns=("score",))
        assert router.display_columns == ("score",)
        response = router.submit(ConjunctiveQuery.empty(tiny_table.schema))
        assert all("score" in t.values for t in response.tuples)

    def test_sharded_site_renders_display_columns_like_the_flat_one(self, tiny_table):
        from repro.backends import sharded_stack
        from repro.web.server import HiddenWebSite

        flat_site = HiddenWebSite(
            engine_stack(tiny_table, k=2, display_columns=("score",), statistics=False)
        )
        sharded_site = HiddenWebSite(
            sharded_stack(tiny_table, 2, k=2, display_columns=("score",), statistics=False)
        )
        assert sharded_site.display_columns == flat_site.display_columns == ("score",)
        assert sharded_site.get("/results?make=Honda") == flat_site.get("/results?make=Honda")

    def test_shards_share_one_table_index(self, small_vehicles_table):
        router = ShardRouter.over_table(small_vehicles_table, 4, k=10)
        indexes = {id(shard._index) for shard in router.shards}
        assert indexes == {id(small_vehicles_table.index)}

    def test_more_shards_than_rows(self, tiny_table, tiny_schema):
        unsharded = QueryEngineBackend(tiny_table, k=3)
        router = ShardRouter.over_table(tiny_table, 16, k=3)
        for query in _random_queries(tiny_schema, random.Random(2), 20):
            assert router.submit(query) == unsharded.submit(query)

    @pytest.mark.parametrize("sampler_name", sorted(SAMPLERS))
    def test_sampling_runs_identically_over_a_sharded_stack(
        self, boolean_table, sampler_name
    ):
        count_mode = (
            CountMode.EXACT
            if SAMPLERS[sampler_name]["algorithm"] is SamplerAlgorithm.COUNT_AIDED
            else CountMode.NONE
        )
        config = HDSamplerConfig(
            n_samples=10, seed=23, max_attempts=4_000, **SAMPLERS[sampler_name]
        )
        ranking = HashRanking("shards")

        def run(database):
            return SamplingService(database).submit(config).run()

        flat = run(engine_stack(boolean_table, k=6, ranking=ranking, count_mode=count_mode))
        sharded = run(
            sharded_stack(boolean_table, 4, k=6, ranking=ranking, count_mode=count_mode)
        )
        assert _sample_fingerprint(sharded) == _sample_fingerprint(flat)
        assert sharded.queries_issued == flat.queries_issued

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n_shards=st.integers(min_value=1, max_value=5))
    def test_property_random_tables(self, data, n_shards):
        schema = Schema(
            [
                Attribute("a", Domain.categorical(("x", "y", "z"))),
                Attribute("b", Domain.boolean()),
                Attribute("c", Domain.numeric_buckets((0.0, 10.0, 20.0, 30.0))),
            ],
            name="prop",
        )
        n_rows = data.draw(st.integers(min_value=0, max_value=40))
        rng = random.Random(data.draw(st.integers(0, 2**16)))
        rows = []
        for _ in range(n_rows):
            rows.append(
                {
                    "a": rng.choice(("x", "y", "z")),
                    "b": rng.choice((True, False)),
                    "c": rng.uniform(0.0, 29.9),
                    "score": rng.random(),
                }
            )
        table = Table(schema, rows, name="prop")
        k = data.draw(st.integers(min_value=1, max_value=8))
        ranking = StaticScoreRanking()
        unsharded = QueryEngineBackend(table, k=k, ranking=ranking)
        router = ShardRouter.over_table(table, n_shards, k=k, ranking=ranking)
        for query in _random_queries(schema, rng, 15):
            assert router.submit(query) == unsharded.submit(query)

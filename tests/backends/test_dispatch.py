"""Concurrent dispatch: byte-identical to serial, whatever the thread timing.

The contract under test is absolute: a :class:`ConcurrentShardRouter` (any
worker count, any shard count, any ranking) returns *exactly* the response a
serial :class:`ShardRouter` over the same shards returns, and
``DispatchLayer.submit_many`` returns exactly what a serial loop would, in
input order.  Concurrency may only change the wall clock.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    BackendStack,
    ConcurrentShardRouter,
    DispatchLayer,
    QueryEngineBackend,
    ShardRouter,
    StatisticsLayer,
    TableShardBackend,
    UnreliableLayer,
    engine_stack,
    sharded_stack,
    web_stack,
)
from repro.database.interface import CountMode
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import (
    AttributeWeightedRanking,
    HashRanking,
    RowIdRanking,
    StaticScoreRanking,
)
from repro.database.schema import Attribute, Domain, Schema
from repro.database.table import Table
from repro.exceptions import ConfigurationError, InterfaceError, TransientBackendError
from repro.web.server import HiddenWebSite

from tests.property.test_properties import schema_and_table


def _rankings():
    return [
        RowIdRanking(),
        StaticScoreRanking("score"),
        AttributeWeightedRanking({"score": 1.0, "attr0": -0.5}),
        HashRanking("dispatch"),
    ]


def _random_queries(schema, rng, count):
    queries = [ConjunctiveQuery.empty(schema)]
    for _ in range(count):
        assignment = {}
        for attribute in schema:
            if rng.random() < 0.5:
                assignment[attribute.name] = rng.choice(attribute.domain.values)
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


class TestConcurrentShardRouterEquivalence:
    def test_partitioned_layout_is_byte_identical(self, tiny_table, tiny_schema):
        serial = ShardRouter.over_table(tiny_table, 3, k=2, ranking=StaticScoreRanking())
        with ConcurrentShardRouter.over_table(
            tiny_table, 3, k=2, ranking=StaticScoreRanking(), max_workers=2
        ) as parallel:
            for query in _random_queries(tiny_schema, random.Random(0), 30):
                assert parallel.submit(query) == serial.submit(query)

    def test_heterogeneous_shards_are_byte_identical(self, tiny_table, tiny_schema):
        # Latency-wrapped shards defeat the shared-index fast path, taking
        # the independent scatter branch — the round-trip-bound case the
        # concurrent router exists for.
        def shards():
            return [
                UnreliableLayer(TableShardBackend(tiny_table, 2, i, 3), latency=0.001)
                for i in range(3)
            ]

        serial = ShardRouter(shards())
        with ConcurrentShardRouter(shards(), max_workers=3) as parallel:
            for query in _random_queries(tiny_schema, random.Random(1), 15):
                assert parallel.submit(query) == serial.submit(query)

    @given(data=schema_and_table(), n_shards=st.integers(1, 6), max_workers=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_any_shard_and_worker_count_all_rankings(
        self, data, n_shards, max_workers
    ):
        """The satellite property: parallel dispatch (any worker count, any
        shard count) is byte-identical to serial across the four rankings."""
        schema, table = data
        queries = _random_queries(schema, random.Random(42), 6)
        for ranking in _rankings():
            serial = ShardRouter.over_table(table, n_shards, k=3, ranking=ranking)
            with ConcurrentShardRouter.over_table(
                table, n_shards, k=3, ranking=ranking, max_workers=max_workers
            ) as parallel:
                for query in queries:
                    assert parallel.submit(query) == serial.submit(query)

    def test_sharded_stack_parallel_is_byte_identical(self, tiny_table, tiny_schema):
        serial = sharded_stack(tiny_table, 4, k=2, count_mode=CountMode.EXACT)
        parallel = sharded_stack(tiny_table, 4, k=2, count_mode=CountMode.EXACT, parallel=3)
        for query in _random_queries(tiny_schema, random.Random(2), 30):
            assert parallel.submit(query) == serial.submit(query)
        assert parallel.statistics.queries_issued == serial.statistics.queries_issued

    def test_stack_describes_the_concurrent_router(self, tiny_table):
        stack = sharded_stack(tiny_table, 2, k=2, parallel=2)
        assert stack.describe().endswith("ConcurrentShardRouter")

    def test_parallel_one_keeps_the_serial_router(self, tiny_table):
        stack = sharded_stack(tiny_table, 2, k=2, parallel=1)
        assert type(stack.raw) is ShardRouter

    def test_worker_validation(self, tiny_table):
        with pytest.raises(InterfaceError):
            ConcurrentShardRouter.over_table(tiny_table, 2, k=2, max_workers=0)
        with pytest.raises(ConfigurationError):
            sharded_stack(tiny_table, 2, k=2, parallel=0)

    def test_close_releases_and_the_router_stays_usable(self, tiny_table, tiny_schema):
        router = ConcurrentShardRouter.over_table(tiny_table, 2, k=2, max_workers=2)
        query = ConjunctiveQuery.empty(tiny_schema)
        first = router.submit(query)
        router.close()
        assert router.submit(query) == first  # a fresh pool is created lazily
        router.close()

    def test_default_worker_bound_tracks_shard_count(self, tiny_table):
        assert ConcurrentShardRouter.over_table(tiny_table, 3, k=2).max_workers == 3


class TestDispatchLayer:
    def test_submit_many_matches_a_serial_loop_in_input_order(self, tiny_table, tiny_schema):
        serial = engine_stack(tiny_table, k=2, ranking=StaticScoreRanking())
        layer = DispatchLayer(
            engine_stack(tiny_table, k=2, ranking=StaticScoreRanking()).top, max_workers=4
        )
        queries = _random_queries(tiny_schema, random.Random(3), 25)
        assert layer.submit_many(queries) == [serial.submit(q) for q in queries]
        layer.close()

    def test_single_submit_passes_straight_through(self, tiny_table, tiny_schema):
        stack = engine_stack(tiny_table, k=2, ranking=StaticScoreRanking())
        layer = DispatchLayer(stack.top)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        assert layer.submit(query) == stack.submit(query)

    def test_statistics_layer_counts_exactly_under_concurrency(self, tiny_table, tiny_schema):
        # The lock regression test: 60 concurrent submissions must count as
        # exactly 60, with per-outcome buckets intact.
        stack = engine_stack(tiny_table, k=2, ranking=StaticScoreRanking())
        layer = DispatchLayer(stack.top, max_workers=8)
        queries = _random_queries(tiny_schema, random.Random(4), 59)
        responses = layer.submit_many(queries)
        stats = stack.statistics.as_dict()
        assert stats["queries_issued"] == 60
        assert (
            stats["empty_results"] + stats["valid_results"] + stats["overflow_results"] == 60
        )
        assert stats["tuples_returned"] == sum(len(r.tuples) for r in responses)
        layer.close()

    def test_unreliable_layer_counts_exactly_under_concurrency(self, tiny_table, tiny_schema):
        raw = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        chaos = UnreliableLayer(raw, rate_limit_every=5, max_retries=3)
        layer = DispatchLayer(chaos, max_workers=8)
        queries = _random_queries(tiny_schema, random.Random(9), 79)
        layer.submit_many(queries)
        stats = chaos.statistics
        # Every submission succeeded, every attempt and injected fault counted:
        # attempts = submissions + retries exactly, no lost increments.
        assert stats.attempts == 80 + stats.retries
        assert stats.retries == stats.rate_limited > 0
        assert stats.gave_up == 0
        layer.close()

    def test_budget_is_never_overspent_under_concurrency(self, tiny_table, tiny_schema):
        from repro.database.limits import QueryBudget
        from repro.exceptions import QueryBudgetExceededError

        stack = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(), budget=QueryBudget(limit=10)
        )
        layer = DispatchLayer(stack.top, max_workers=8)
        with pytest.raises(QueryBudgetExceededError):
            layer.submit_many(_random_queries(tiny_schema, random.Random(5), 39))
        assert stack.budget.issued == 10  # charged to the limit, not past it
        layer.close()

    def test_web_stack_parallel_fetches_batches_concurrently(self, tiny_table, tiny_schema):
        site = HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        stack = web_stack(site, tiny_schema, parallel=4)
        assert stack.describe().startswith("DispatchLayer")
        queries = _random_queries(tiny_schema, random.Random(6), 12)
        oracle = web_stack(
            HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())),
            tiny_schema,
        )
        assert stack.submit_many(queries) == [oracle.submit(q) for q in queries]
        assert stack.statistics.queries_issued == len(queries)

    def test_submit_many_without_a_dispatch_layer_degrades_to_a_loop(
        self, tiny_table, tiny_schema
    ):
        stack = engine_stack(tiny_table, k=2, ranking=StaticScoreRanking())
        queries = _random_queries(tiny_schema, random.Random(7), 5)
        assert stack.submit_many(queries) == [
            engine_stack(tiny_table, k=2, ranking=StaticScoreRanking()).submit(q)
            for q in queries
        ]

    def test_parallel_composes_with_history(self, tiny_table, tiny_schema):
        """The striped HistoryLayer legally sits under the dispatch layer:
        concurrent batches answer identically AND repeats cost no fetches."""
        site = HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        stack = web_stack(site, tiny_schema, history=True, parallel=4)
        assert stack.describe() == (
            "DispatchLayer → HistoryLayer → StatisticsLayer → BudgetLayer → WebPageBackend"
        )
        queries = _random_queries(tiny_schema, random.Random(9), 12)
        oracle = web_stack(
            HiddenWebSite(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())),
            tiny_schema,
        )
        assert stack.submit_many(queries) == [oracle.submit(q) for q in queries]
        # A second pass over the same batch is answered wholly from history.
        issued = stack.statistics.queries_issued
        assert stack.submit_many(queries) == [oracle.submit(q) for q in queries]
        assert stack.statistics.queries_issued == issued

    def test_batch_exception_propagates_first_by_input_order(self, tiny_table, tiny_schema):
        class ExplodesOnHonda:
            def __init__(self, inner):
                self.inner = inner

            @property
            def schema(self):
                return self.inner.schema

            @property
            def k(self):
                return self.inner.k

            def submit(self, query):
                if query.value_of("make") == "Honda":
                    raise TransientBackendError("boom")
                return self.inner.submit(query)

        raw = ExplodesOnHonda(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        layer = DispatchLayer(raw, max_workers=4)
        queries = [
            ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"}),
            ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"}),
            ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"}),
        ]
        with pytest.raises(TransientBackendError):
            layer.submit_many(queries)
        layer.close()

    def test_dispatch_runs_on_worker_threads(self, tiny_table, tiny_schema):
        seen: set[str] = set()

        class ThreadRecorder:
            def __init__(self, inner):
                self.inner = inner

            @property
            def schema(self):
                return self.inner.schema

            @property
            def k(self):
                return self.inner.k

            def submit(self, query):
                seen.add(threading.current_thread().name)
                return self.inner.submit(query)

        raw = ThreadRecorder(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        layer = DispatchLayer(raw, max_workers=4)
        layer.submit_many(_random_queries(tiny_schema, random.Random(8), 20))
        assert all(name.startswith("backend-dispatch") for name in seen)
        layer.close()

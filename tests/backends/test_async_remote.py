"""The event-loop remote client: raw-backend contract, stacks, equivalence.

:class:`~repro.backends.async_remote.AsyncRemoteBackend` must be a drop-in
sibling of the threaded ``RemoteBackend``: the sync facade satisfies the raw
backend contract for every existing layer, the ambient deadline crosses the
thread hop, breakers above the async transport open and fast-fail exactly as
over the threaded one, and a full sampling run through an
``async_remote_stack`` — batched, compressed, concurrent — reproduces the
threaded run sample for sample on shared seeds.
"""

import asyncio
import threading
import time

import pytest

from repro.backends import (
    AsyncRemoteBackend,
    CircuitBreakerPolicy,
    Deadline,
    DispatchLayer,
    RemoteBackend,
    UnreliableLayer,
    async_remote_stack,
    deadline_scope,
    engine_stack,
)
from repro.core.config import HDSamplerConfig
from repro.database.interface import CountMode
from repro.database.limits import QueryBudget
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking
from repro.datasets.vehicles import (
    VehiclesConfig,
    default_vehicles_ranking,
    generate_vehicles_table,
)
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    QueryBudgetExceededError,
    TransientBackendError,
)
from repro.service import SamplingService
from repro.web.aiohttpd import AsyncHiddenDatabaseHTTPServer
from repro.web.httpd import HiddenDatabaseHTTPServer


@pytest.fixture()
def served(tiny_table):
    return engine_stack(
        tiny_table, k=2, ranking=StaticScoreRanking(),
        count_mode=CountMode.EXACT, statistics=False,
    )


@pytest.fixture()
def server(served):
    with AsyncHiddenDatabaseHTTPServer(served) as endpoint:
        yield endpoint


def _queries(schema, count=10, seed=1):
    import random

    rng = random.Random(seed)
    queries = [ConjunctiveQuery.empty(schema)]
    for _ in range(count):
        assignment = {}
        for attribute in schema:
            if rng.random() < 0.5:
                assignment[attribute.name] = rng.choice(attribute.domain.values)
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


class TestSyncFacadeContract:
    def test_submit_matches_the_served_backend(self, server, served, tiny_schema):
        with AsyncRemoteBackend(server.url) as remote:
            for query in _queries(tiny_schema):
                assert remote.submit(query) == served.submit(query), str(query)

    def test_submit_many_is_one_wire_round_trip(self, server, served, tiny_schema):
        queries = _queries(tiny_schema, count=8, seed=3)
        with AsyncRemoteBackend(server.url) as remote:
            before = server.requests_served
            assert remote.submit_many(queries) == [served.submit(q) for q in queries]
            assert server.requests_served == before + 1
            assert remote.submit_many([]) == []

    def test_submit_outcomes_carries_per_item_errors(self, tiny_table, tiny_schema):
        limited = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(),
            budget=QueryBudget(limit=3), statistics=False,
        )
        queries = _queries(tiny_schema, count=5, seed=7)
        with AsyncHiddenDatabaseHTTPServer(limited, batch_workers=1) as endpoint:
            with AsyncRemoteBackend(endpoint.url) as remote:
                outcomes = remote.submit_outcomes(queries)
        answered = [o for o in outcomes if not isinstance(o, Exception)]
        refused = [o for o in outcomes if isinstance(o, Exception)]
        assert len(answered) == 3
        assert refused and all(isinstance(o, QueryBudgetExceededError) for o in refused)

    def test_health_round_trips(self, server):
        with AsyncRemoteBackend(server.url) as remote:
            assert remote.health()["status"] == "ok"

    def test_facade_is_thread_safe(self, server, served, tiny_schema):
        # Many sampler threads sharing one facade (the shape a DispatchLayer
        # produces) must multiplex cleanly over the one private loop.
        from concurrent.futures import ThreadPoolExecutor

        queries = _queries(tiny_schema, count=30, seed=9)
        with AsyncRemoteBackend(server.url) as remote:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(remote.submit, queries))
        assert responses == [served.submit(q) for q in queries]


class TestLifecycleAndValidation:
    def test_non_http_url_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncRemoteBackend("ftp://example.com")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"pool_size": -1},
            {"connect_retries": -1},
            {"connect_backoff": -0.1},
            {"compress_threshold": -5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AsyncRemoteBackend("http://127.0.0.1:9", **kwargs)

    def test_dead_endpoint_fails_fast_without_leaking_the_facade_thread(self):
        def facade_threads():
            return sum(
                1 for t in threading.enumerate() if t.name == "async-remote-facade"
            )

        before = facade_threads()
        with pytest.raises(TransientBackendError):
            AsyncRemoteBackend("http://127.0.0.1:9", timeout=0.5)
        assert facade_threads() == before

    def test_use_after_close_is_a_configuration_error(self, server, tiny_schema):
        remote = AsyncRemoteBackend(server.url)
        remote.close()
        remote.close()  # idempotent
        with pytest.raises(ConfigurationError):
            remote.submit(ConjunctiveQuery.empty(tiny_schema))

    def test_pool_size_zero_disables_keep_alive(self, server, tiny_schema):
        with AsyncRemoteBackend(server.url, pool_size=0) as remote:
            for _ in range(3):
                remote.submit(ConjunctiveQuery.empty(tiny_schema))
            stats = remote.pool_statistics
        assert stats["opened"] == 4  # schema fetch + one per submit
        assert stats["reused"] == 0
        assert stats["idle"] == 0

    def test_stale_keep_alive_reconnects_transparently(self, served, tiny_schema):
        # The server reclaims the idle connection after 0.3s; the next submit
        # must notice the clean pre-response EOF on the *reused* socket and
        # re-send on a fresh connection instead of surfacing an error.
        with HiddenDatabaseHTTPServer(served, request_timeout=0.3) as endpoint:
            with AsyncRemoteBackend(endpoint.url) as remote:
                query = ConjunctiveQuery.empty(tiny_schema)
                expected = remote.submit(query)
                time.sleep(0.8)
                assert remote.submit(query) == expected
                assert remote.pool_statistics["stale_reconnects"] >= 1


class TestDeadlinesOverAsyncTransport:
    def test_expired_deadline_never_reaches_the_wire(self, server, tiny_schema):
        with AsyncRemoteBackend(server.url) as remote:
            before = server.requests_served
            with deadline_scope(Deadline.after(0.0)):
                with pytest.raises(DeadlineExceededError):
                    remote.submit(ConjunctiveQuery.empty(tiny_schema))
            assert server.requests_served == before

    def test_live_deadline_attaches_the_budget_and_serves(self, server, tiny_schema):
        with AsyncRemoteBackend(server.url) as remote:
            with deadline_scope(Deadline.after(30.0)):
                remote.submit(ConjunctiveQuery.empty(tiny_schema))
        assert server.deadline_shed == 0

    def test_deadline_crosses_into_native_coroutines(self, server, tiny_schema):
        # The async-native path reads the ambient deadline inside the loop.
        async def drive():
            with deadline_scope(Deadline.after(0.0)):
                with AsyncRemoteBackend(server.url) as remote:
                    with pytest.raises(DeadlineExceededError):
                        await remote.asubmit(ConjunctiveQuery.empty(tiny_schema))

        asyncio.run(drive())


class TestAsyncRemoteStack:
    def test_layer_order_matches_the_threaded_builder(self, server):
        stack = async_remote_stack(server.url, history=True)
        assert stack.describe() == (
            "HistoryLayer → StatisticsLayer → BudgetLayer → UnreliableLayer "
            "→ AsyncRemoteBackend"
        )
        guarded = async_remote_stack(server.url, parallel=2, breaker=True)
        assert guarded.describe() == (
            "DispatchLayer → StatisticsLayer → BudgetLayer → UnreliableLayer "
            "→ CircuitBreakerLayer → AsyncRemoteBackend"
        )
        assert isinstance(guarded.layer(DispatchLayer), DispatchLayer)

    def test_open_breaker_fast_fails_without_touching_the_wire(
        self, tiny_table, tiny_schema
    ):
        from repro.backends import BackendStack

        flaky = BackendStack(
            engine_stack(
                tiny_table, k=2, ranking=StaticScoreRanking(), statistics=False
            ).top,
            [lambda inner: UnreliableLayer(inner, max_retries=0, schedule=["transient"])],
        )
        query = ConjunctiveQuery.empty(tiny_schema)
        with AsyncHiddenDatabaseHTTPServer(flaky) as endpoint:
            stack = async_remote_stack(
                endpoint.url,
                max_retries=0,
                breaker=CircuitBreakerPolicy(
                    window=4, failure_threshold=1, reset_timeout=60.0
                ),
            )
            with pytest.raises(TransientBackendError):
                stack.submit(query)  # real 503 over the async transport
            served_after_failure = endpoint.requests_served
            with pytest.raises(CircuitOpenError):
                stack.submit(query)  # breaker is open: no round-trip at all
            assert endpoint.requests_served == served_after_failure

    def test_retry_layer_recovers_real_429s_over_the_async_transport(
        self, tiny_table, tiny_schema
    ):
        from repro.backends import BackendStack

        chaotic = BackendStack(
            engine_stack(
                tiny_table, k=2, ranking=StaticScoreRanking(), statistics=False
            ).top,
            [lambda inner: UnreliableLayer(inner, max_retries=0, rate_limit_every=2)],
        )
        query = ConjunctiveQuery.empty(tiny_schema)
        with AsyncHiddenDatabaseHTTPServer(chaotic) as endpoint:
            stack = async_remote_stack(endpoint.url, max_retries=3, retry_backoff=0.0)
            expected = stack.submit(query)
            for _ in range(7):
                assert stack.submit(query) == expected
            retry_layer = stack.layer(UnreliableLayer)
            assert retry_layer.statistics.backend_rate_limited > 0
            assert retry_layer.statistics.gave_up == 0


class TestEquivalenceWithThreadedTransport:
    def test_full_sampling_run_identical_across_transports(self):
        # The property the tier hangs on: same seeds, same samples, whether
        # the run went over the threaded client/server or the async pair with
        # batching, dispatch concurrency and forced response compression.
        table = generate_vehicles_table(VehiclesConfig(n_rows=600, seed=9))
        ranking = default_vehicles_ranking()
        config = HDSamplerConfig(n_samples=6, seed=4)
        served = engine_stack(table, 30, ranking=ranking, statistics=False)
        with HiddenDatabaseHTTPServer(served) as endpoint:
            threaded_result = SamplingService(endpoint.url).submit(config).run()
        with AsyncHiddenDatabaseHTTPServer(served, compress_threshold=1) as endpoint:
            stack = async_remote_stack(endpoint.url, parallel=4, batch=8)
            async_result = SamplingService(stack).submit(config).run()
        assert [s.tuple_id for s in async_result.samples] == [
            s.tuple_id for s in threaded_result.samples
        ]
        assert async_result.queries_issued == threaded_result.queries_issued

    def test_batched_compressed_concurrent_answers_stay_byte_identical(
        self, tiny_table, tiny_schema
    ):
        served = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(),
            count_mode=CountMode.EXACT, statistics=False,
        )
        queries = _queries(tiny_schema, count=40, seed=13)
        expected = [served.submit(q) for q in queries]
        with AsyncHiddenDatabaseHTTPServer(served, compress_threshold=1) as endpoint:
            # One 40-query envelope clears the client's 1024-byte threshold.
            stack = async_remote_stack(endpoint.url, parallel=4, batch=40)
            assert stack.submit_many(queries) == expected
            raw = stack.top
            while not isinstance(raw, AsyncRemoteBackend):
                raw = raw.inner
            counters = raw.compression_statistics
            # Batch envelopes cleared the threshold in both directions.
            assert counters["requests_compressed"] >= 1
            assert counters["responses_decompressed"] >= 1

"""The resilience primitives: deadlines, backoff, fault scripts, the breaker.

The breaker tests drive the state machine on an injected fake clock, so
OPEN → HALF_OPEN → CLOSED transitions are exercised without sleeping; the
fast-fail test is the one place a real clock appears, because "fails in
under a millisecond without touching the backend" is the contract being
proved.
"""

import threading
import time

import pytest

from repro.backends import (
    BackendStack,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerLayer,
    CircuitBreakerPolicy,
    Deadline,
    Fault,
    FaultSchedule,
    UnreliableLayer,
    current_deadline,
    deadline_scope,
    engine_stack,
)
from repro.backends.resilience import (
    DEADLINE_HEADER,
    backoff_delay,
    chain_retry_after,
    chain_would_allow,
    resilience_report,
    scoped_to_current_deadline,
)
from repro.database.interface import CountMode
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    ConnectionDroppedError,
    DeadlineExceededError,
    QueryBudgetExceededError,
    RateLimitedError,
    TransientBackendError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def raw_backend(tiny_table):
    return engine_stack(
        tiny_table, k=2, ranking=StaticScoreRanking(),
        count_mode=CountMode.EXACT, statistics=False,
    ).top


@pytest.fixture()
def empty_query(tiny_schema):
    return ConjunctiveQuery.empty(tiny_schema)


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(-0.1)

    def test_remaining_counts_down_and_expires(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 60.0
        assert 0 < deadline.remaining_ms() <= 60_000
        expired = Deadline.after(0.0)
        assert expired.expired
        assert expired.remaining() <= 0.0
        assert expired.remaining_ms() == 0

    def test_clip_bounds_a_sleep_to_the_budget(self):
        deadline = Deadline.after(0.5)
        assert deadline.clip(10.0) <= 0.5
        assert deadline.clip(0.0) == 0.0

    def test_check_raises_typed_and_untransient(self):
        with pytest.raises(DeadlineExceededError) as info:
            Deadline.after(0.0).check("unit test")
        assert "unit test" in str(info.value)
        # A blown deadline must never be retried as if it were weather.
        assert not isinstance(info.value, TransientBackendError)

    def test_from_remaining_ms_round_trips(self):
        deadline = Deadline.from_remaining_ms(30_000)
        assert 29_000 < deadline.remaining_ms() <= 30_000

    def test_scope_installs_nests_and_clears(self):
        assert current_deadline() is None
        outer = Deadline.after(60.0)
        inner = Deadline.after(1.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            with deadline_scope(None):  # a handler isolating itself
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scoped_callable_carries_the_deadline_across_threads(self):
        seen: list[Deadline | None] = []

        def probe() -> None:
            seen.append(current_deadline())

        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            carried = scoped_to_current_deadline(probe)
        bare = scoped_to_current_deadline(probe)  # no ambient deadline: unwrapped
        assert bare is probe
        worker = threading.Thread(target=carried)
        worker.start()
        worker.join()
        assert seen == [deadline]


class TestBackoffDelay:
    def test_exponential_and_capped(self):
        assert backoff_delay(0.1, 0) == pytest.approx(0.1)
        assert backoff_delay(0.1, 3) == pytest.approx(0.8)
        assert backoff_delay(0.1, 10, max_backoff=1.0) == pytest.approx(1.0)
        assert backoff_delay(0.0, 5) == 0.0

    def test_full_jitter_is_bounded_and_deterministic(self):
        import random

        draws = [backoff_delay(0.1, 4, max_backoff=1.0, rng=random.Random(7)) for _ in range(20)]
        assert all(0.0 <= delay <= 1.0 for delay in draws)
        assert draws == [
            backoff_delay(0.1, 4, max_backoff=1.0, rng=random.Random(7)) for _ in range(20)
        ]


class TestFaultSchedule:
    def test_string_specs_parse_and_replay_in_order(self):
        schedule = FaultSchedule(["transient", "slow:0.25", "rate_limit:2.5", "drop", "ok"])
        kinds = [schedule.next_fault() for _ in range(5)]
        assert [fault.kind for fault in kinds] == ["transient", "ok", "rate_limit", "drop", "ok"]
        assert kinds[1].latency == pytest.approx(0.25)
        assert kinds[2].retry_after == pytest.approx(2.5)
        # Exhausted schedules fall back to clean weather.
        assert schedule.next_fault().kind == "ok"
        assert schedule.remaining() == 0

    def test_repeating_schedule_loops(self):
        schedule = FaultSchedule(["transient", "ok"], repeat=True)
        kinds = [schedule.next_fault().kind for _ in range(5)]
        assert kinds == ["transient", "ok", "transient", "ok", "transient"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(["catastrophic"])
        with pytest.raises(ConfigurationError):
            Fault("nope")

    def test_entries_validated_at_construction(self):
        # A typo'd kind, a malformed argument, an argument on an argless
        # kind, and a non-string entry all fail *immediately* — never five
        # minutes into a chaos run.
        for bad in (["slowx:5"], ["slow:abc"], ["transient:2"], [5], [None], [["ok"]]):
            with pytest.raises(ConfigurationError):
                FaultSchedule(bad)

    def test_faults_build_their_typed_errors(self):
        assert Fault("ok").error() is None
        assert isinstance(Fault("transient").error(), TransientBackendError)
        assert isinstance(Fault("drop").error(), ConnectionDroppedError)
        rate_limited = Fault("rate_limit", retry_after=1.5).error()
        assert isinstance(rate_limited, RateLimitedError)
        assert rate_limited.retry_after == pytest.approx(1.5)


class TestCircuitBreaker:
    def _tripped(self, clock, **policy):
        policy = CircuitBreakerPolicy(**{"window": 4, "failure_threshold": 3, **policy})
        breaker = CircuitBreaker(policy, clock=clock)
        for _ in range(policy.failure_threshold):
            breaker.before_call()
            breaker.record_failure()
        return breaker

    def test_opens_after_window_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            CircuitBreakerPolicy(window=4, failure_threshold=3), clock=clock
        )
        # Two failures among successes: under threshold, still closed.
        for failed in (True, False, True):
            breaker.before_call()
            breaker.record_failure() if failed else breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.before_call()
        breaker.record_failure()  # third failure inside the 4-wide window
        assert breaker.state is BreakerState.OPEN
        assert breaker.statistics.opens == 1
        # Old outcomes age out: a fresh breaker absorbing the same two
        # failures spread over a long success run never trips.
        spread = CircuitBreaker(
            CircuitBreakerPolicy(window=4, failure_threshold=3), clock=clock
        )
        for failed in (True, False, False, False, True, False, False, False, True):
            spread.before_call()
            spread.record_failure() if failed else spread.record_success()
        assert spread.state is BreakerState.CLOSED

    def test_open_circuit_fails_fast_with_retry_hint(self):
        clock = FakeClock()
        breaker = self._tripped(clock, reset_timeout=2.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.before_call()
        assert info.value.retry_after == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_after() == pytest.approx(0.5)
        assert not breaker.would_allow()

    def test_half_open_probe_admits_exactly_one_call(self):
        clock = FakeClock()
        breaker = self._tripped(clock, reset_timeout=1.0)
        clock.advance(1.0)
        assert breaker.would_allow()
        breaker.before_call()  # this call becomes the probe
        assert breaker.state is BreakerState.HALF_OPEN
        with pytest.raises(CircuitOpenError, match="probe in flight"):
            breaker.before_call()
        assert breaker.statistics.probes == 1

    def test_probe_success_recloses_and_clears_the_window(self):
        clock = FakeClock()
        breaker = self._tripped(clock, reset_timeout=1.0)
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.statistics.recloses == 1
        snapshot = breaker.snapshot()
        assert snapshot["window_failures"] == 0 and snapshot["state"] == "closed"

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._tripped(clock, reset_timeout=1.0)
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.statistics.opens == 2

    def test_multi_probe_policy_needs_every_success(self):
        clock = FakeClock()
        breaker = self._tripped(clock, reset_timeout=1.0, half_open_successes=2)
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN  # one of two
        breaker.before_call()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreakerPolicy(window=0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerPolicy(window=4, failure_threshold=5)
        with pytest.raises(ConfigurationError):
            CircuitBreakerPolicy(reset_timeout=-1.0)


class CountingBackend:
    """Raw-contract shim that counts calls and fails on command."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.failing = False

    @property
    def schema(self):
        return self.inner.schema

    @property
    def k(self):
        return self.inner.k

    def submit(self, query):
        self.calls += 1
        if self.failing:
            raise TransientBackendError("backend down")
        return self.inner.submit(query)


class TestCircuitBreakerLayer:
    def _guarded(self, raw_backend, **policy):
        counting = CountingBackend(raw_backend)
        layer = CircuitBreakerLayer(
            counting,
            policy=CircuitBreakerPolicy(**{"window": 4, "failure_threshold": 3, **policy}),
        )
        return counting, layer

    def test_trips_then_fast_fails_without_touching_the_backend(
        self, raw_backend, empty_query
    ):
        counting, layer = self._guarded(raw_backend, reset_timeout=60.0)
        counting.failing = True
        for _ in range(3):
            with pytest.raises(TransientBackendError):
                layer.submit(empty_query)
        assert counting.calls == 3
        assert layer.breaker.state is BreakerState.OPEN
        # The acceptance criterion: open-circuit calls fail in under a
        # millisecond each and never reach the inner backend.
        started = time.perf_counter()
        for _ in range(50):
            with pytest.raises(CircuitOpenError):
                layer.submit(empty_query)
        elapsed = time.perf_counter() - started
        assert counting.calls == 3
        assert elapsed / 50 < 0.001
        assert layer.breaker.statistics.fast_failures == 50

    def test_half_open_probe_recloses_through_the_layer(self, raw_backend, empty_query):
        clock = FakeClock()
        counting = CountingBackend(raw_backend)
        layer = CircuitBreakerLayer(
            counting,
            breaker=CircuitBreaker(
                CircuitBreakerPolicy(window=4, failure_threshold=2, reset_timeout=1.0),
                clock=clock,
            ),
        )
        counting.failing = True
        for _ in range(2):
            with pytest.raises(TransientBackendError):
                layer.submit(empty_query)
        assert layer.breaker.state is BreakerState.OPEN
        clock.advance(1.0)
        counting.failing = False
        response = layer.submit(empty_query)  # the half-open probe, for real
        assert response == raw_backend.submit(empty_query)
        assert layer.breaker.state is BreakerState.CLOSED

    def test_permanent_refusals_count_as_successes(self, raw_backend, empty_query):
        class Refusing(CountingBackend):
            def submit(self, query):
                self.calls += 1
                raise QueryBudgetExceededError(issued=5, budget=5)

        layer = CircuitBreakerLayer(
            Refusing(raw_backend),
            policy=CircuitBreakerPolicy(window=4, failure_threshold=2),
        )
        for _ in range(6):
            with pytest.raises(QueryBudgetExceededError):
                layer.submit(empty_query)
        assert layer.breaker.state is BreakerState.CLOSED
        assert layer.breaker.statistics.successes == 6

    def test_batch_outcomes_are_recorded_per_item(self, raw_backend, empty_query):
        faulty = UnreliableLayer(
            raw_backend, max_retries=0, schedule=["transient", "ok", "transient"]
        )
        layer = CircuitBreakerLayer(
            faulty, policy=CircuitBreakerPolicy(window=4, failure_threshold=2)
        )
        outcomes = layer.submit_outcomes([empty_query] * 3)
        assert isinstance(outcomes[0], TransientBackendError)
        assert not isinstance(outcomes[1], Exception)
        assert isinstance(outcomes[2], TransientBackendError)
        # Two per-item failures inside one gated batch tripped the window.
        assert layer.breaker.state is BreakerState.OPEN

    def test_policy_and_breaker_are_mutually_exclusive(self, raw_backend):
        with pytest.raises(ConfigurationError):
            CircuitBreakerLayer(
                raw_backend, policy=CircuitBreakerPolicy(), breaker=CircuitBreaker()
            )


class TestRetryLayerIntegration:
    def test_retry_layer_never_retries_an_open_circuit(self, raw_backend, empty_query):
        counting = CountingBackend(raw_backend)
        guarded = CircuitBreakerLayer(
            counting,
            policy=CircuitBreakerPolicy(window=4, failure_threshold=2, reset_timeout=60.0),
        )
        retrying = UnreliableLayer(guarded, max_retries=5, retry_backoff=0.0)
        counting.failing = True
        with pytest.raises(CircuitOpenError):
            retrying.submit(empty_query)
        # 2 real attempts tripped the breaker; the fast-fail surfaced
        # immediately instead of burning the remaining retry budget.  The
        # pass-through is not a "gave up after retrying" — the breaker
        # refused, the retry layer stepped aside.
        assert counting.calls == 2
        assert retrying.statistics.retries == 2
        assert retrying.statistics.gave_up == 0

    def test_scripted_chaos_is_retried_deterministically(self, raw_backend, empty_query):
        layer = UnreliableLayer(
            raw_backend,
            max_retries=3,
            retry_backoff=0.0,
            schedule=["transient", "drop", "rate_limit:0", "ok"],
        )
        response = layer.submit(empty_query)
        assert response == raw_backend.submit(empty_query)
        statistics = layer.statistics
        assert statistics.retries == 3
        assert statistics.transient_failures == 1
        assert statistics.injected_drops == 1
        assert statistics.rate_limited == 1

    def test_server_retry_after_hint_wins_over_computed_backoff(
        self, raw_backend, empty_query, monkeypatch
    ):
        layer = UnreliableLayer(
            raw_backend,
            max_retries=2,
            retry_backoff=30.0,  # computed backoff would sleep half a minute
            schedule=["rate_limit:0.01", "ok"],
        )
        slept: list[float] = []
        monkeypatch.setattr(
            "repro.backends.layers.time.sleep", lambda seconds: slept.append(seconds)
        )
        layer.submit(empty_query)
        assert slept == [pytest.approx(0.01)]

    def test_deadline_clips_retry_sleeps_end_to_end(self, raw_backend, empty_query):
        layer = UnreliableLayer(
            raw_backend,
            max_retries=8,
            retry_backoff=30.0,
            schedule=["transient"] * 9,
        )
        started = time.monotonic()
        with deadline_scope(Deadline.after(0.2)):
            with pytest.raises(DeadlineExceededError):
                layer.submit(empty_query)
        assert time.monotonic() - started < 1.0  # never slept the 30 s backoff
        assert layer.statistics.deadline_exceeded == 1

    def test_expired_deadline_sheds_before_the_first_attempt(
        self, raw_backend, empty_query
    ):
        counting = CountingBackend(raw_backend)
        layer = UnreliableLayer(counting, max_retries=0)
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceededError):
                layer.submit(empty_query)
        assert counting.calls == 0
        assert layer.statistics.deadline_exceeded == 1


class TestChainHelpers:
    def test_report_and_gates_over_a_composed_stack(self, tiny_table, empty_query):
        stack = engine_stack(
            tiny_table, k=2, ranking=StaticScoreRanking(), statistics=False
        )
        # Innermost first: the scripted fault source proxies the backend and
        # the breaker above it observes its weather.
        guarded = BackendStack(
            stack.top,
            [
                lambda inner: UnreliableLayer(inner, max_retries=0, schedule=["transient"]),
                lambda inner: CircuitBreakerLayer(
                    inner,
                    policy=CircuitBreakerPolicy(
                        window=4, failure_threshold=1, reset_timeout=60.0
                    ),
                ),
            ],
        )
        assert resilience_report(guarded)["breakers"][0]["state"] == "closed"
        assert chain_would_allow(guarded)
        assert chain_retry_after(guarded) == 0.0
        with pytest.raises(TransientBackendError):
            guarded.submit(empty_query)
        assert not chain_would_allow(guarded)
        assert chain_retry_after(guarded) > 0.0
        assert resilience_report(guarded)["breakers"][0]["state"] == "open"

    def test_report_is_none_without_resilience_nodes(self, tiny_table):
        stack = engine_stack(tiny_table, k=2, ranking=StaticScoreRanking())
        assert resilience_report(stack) is None
        assert chain_would_allow(stack)

    def test_per_shard_breakers_surface_through_the_router(self, tiny_table, empty_query):
        from repro.backends import ShardRouter

        router = ShardRouter.over_table(
            tiny_table, 2, 2, shard_layer=lambda shard: CircuitBreakerLayer(shard)
        )
        unsharded = ShardRouter.over_table(tiny_table, 1, 2)
        # Wrapped shards still merge byte-identically...
        assert router.submit(empty_query) == unsharded.submit(empty_query)
        # ...and each partition's own breaker shows up, tagged by shard.
        report = resilience_report(router)
        assert [snapshot["shard"] for snapshot in report["breakers"]] == [0, 1]
        assert all(snapshot["state"] == "closed" for snapshot in report["breakers"])
        assert chain_would_allow(router)


def test_deadline_header_constant_agrees_with_the_server():
    # httpd.py duplicates the constant to avoid a module import cycle; this
    # is the test that duplication comment promises.
    from repro.web.httpd import DEADLINE_HEADER as server_header

    assert server_header == DEADLINE_HEADER

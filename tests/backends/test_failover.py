"""Health-checked failover: primary, replicas, and per-target breakers.

In-process tests drive the router over shim backends (deterministic, no
sockets); the HTTP end of failover — live endpoints, ``/api/health`` probes
— lives in ``tests/web/test_deadline_http.py``.
"""

import pytest

from repro.backends import (
    CircuitBreakerPolicy,
    FailoverRouter,
    engine_stack,
)
from repro.backends.resilience import resilience_report
from repro.database.interface import CountMode
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking
from repro.exceptions import (
    ConfigurationError,
    FormParseError,
    TransientBackendError,
)


class FlakyBackend:
    """Raw-contract shim whose availability the test scripts directly."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.health_probes = 0
        self.failing = False

    @property
    def schema(self):
        return self.inner.schema

    @property
    def k(self):
        return self.inner.k

    def submit(self, query):
        self.calls += 1
        if self.failing:
            raise TransientBackendError("target down")
        return self.inner.submit(query)

    def health(self):
        self.health_probes += 1
        if self.failing:
            raise TransientBackendError("target down")
        return {"status": "ok"}


@pytest.fixture()
def engine(tiny_table):
    return engine_stack(
        tiny_table, k=2, ranking=StaticScoreRanking(),
        count_mode=CountMode.EXACT, statistics=False,
    ).top


@pytest.fixture()
def empty_query(tiny_schema):
    return ConjunctiveQuery.empty(tiny_schema)


def make_router(engine, n_replicas=1, **policy):
    policy = CircuitBreakerPolicy(
        **{"window": 4, "failure_threshold": 2, "reset_timeout": 60.0, **policy}
    )
    primary = FlakyBackend(engine)
    replicas = [FlakyBackend(engine) for _ in range(n_replicas)]
    return primary, replicas, FailoverRouter(primary, replicas, policy=policy)


class TestRouting:
    def test_primary_serves_while_healthy(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        for _ in range(3):
            assert router.submit(empty_query) == engine.submit(empty_query)
        assert primary.calls == 3 and replica.calls == 0
        assert router.statistics.failovers == 0

    def test_failover_to_replica_on_primary_fault(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        primary.failing = True
        assert router.submit(empty_query) == engine.submit(empty_query)
        assert primary.calls == 1 and replica.calls == 1
        assert router.statistics.failovers == 1

    def test_open_primary_circuit_is_skipped_without_a_call(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        primary.failing = True
        for _ in range(2):
            router.submit(empty_query)  # two faults trip the primary breaker
        calls_before = primary.calls
        router.submit(empty_query)
        assert primary.calls == calls_before  # fast-skipped, not re-tried
        assert replica.calls == 3

    def test_all_targets_down_raises_the_last_fault(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        primary.failing = replica.failing = True
        with pytest.raises(TransientBackendError):
            router.submit(empty_query)
        assert router.statistics.exhausted == 1

    def test_permanent_refusals_are_not_failed_over(self, engine, empty_query, tiny_schema):
        class Refusing(FlakyBackend):
            def submit(self, query):
                self.calls += 1
                raise FormParseError("your query is malformed")

        primary = Refusing(engine)
        replica = FlakyBackend(engine)
        router = FailoverRouter(primary, [replica])
        with pytest.raises(FormParseError):
            router.submit(empty_query)
        # The primary *answered*; asking a replica the same bad question
        # would just double the damage.
        assert replica.calls == 0

    def test_batch_outcomes_fail_over_only_all_transient_batches(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        primary.failing = True
        outcomes = router.submit_outcomes([empty_query, empty_query])
        assert all(not isinstance(outcome, Exception) for outcome in outcomes)
        assert replica.calls >= 1
        assert router.submit_many([empty_query]) == [engine.submit(empty_query)]

    def test_mismatched_targets_rejected(self, engine, tiny_table):
        other_k = engine_stack(
            tiny_table, k=5, ranking=StaticScoreRanking(), statistics=False
        ).top
        with pytest.raises(ConfigurationError):
            FailoverRouter(engine, [other_k])


class TestHealthChecks:
    def test_check_health_reports_and_drives_the_breakers(self, engine, empty_query):
        primary, (replica,), router = make_router(engine, reset_timeout=0.0)
        primary.failing = True
        for _ in range(2):
            router.submit(empty_query)  # trip the primary breaker
        report = router.check_health()
        assert report["primary"]["healthy"] is False
        assert report["replica-1"]["healthy"] is True
        # Recovery: with reset_timeout=0 the next health probe is admitted
        # immediately and walks the breaker back to CLOSED...
        primary.failing = False
        report = router.check_health()
        assert report["primary"]["healthy"] is True
        assert report["primary"]["breaker"]["state"] == "closed"
        # ...which steers real traffic back to the primary.
        calls_before = primary.calls
        router.submit(empty_query)
        assert primary.calls == calls_before + 1

    def test_targets_without_health_report_unknown(self, engine):
        router = FailoverRouter(engine)  # a bare engine has no health()
        report = router.check_health()
        assert report["primary"]["healthy"] is None

    def test_snapshot_and_report_surface_per_target_state(self, engine, empty_query):
        primary, (replica,), router = make_router(engine)
        primary.failing = True
        router.submit(empty_query)
        snapshot = router.snapshot()
        assert snapshot["submissions"] == 1 and snapshot["failovers"] == 1
        assert snapshot["served"] == {"primary": 0, "replica-1": 1}
        assert set(snapshot["targets"]) == {"primary", "replica-1"}
        report = resilience_report(router)
        assert report["failover"]["submissions"] == 1

"""The lock-striped HistoryLayer: concurrent submits, serial answers.

The contract the striping must uphold is absolute (acceptance criterion of
the remote-hot-path change): answers produced by a striped history under
8-way concurrent submission are **byte-identical** to the serial
``HistoryLayer``'s answers for the same queries, and the per-key in-flight
guard ensures the same canonical query is never issued to the inner backend
twice — however many threads miss on it simultaneously.
"""

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import HistoryLayer, QueryEngineBackend
from repro.database.interface import HiddenDatabaseInterface
from repro.exceptions import ConfigurationError
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import HashRanking, StaticScoreRanking

from tests.property.test_properties import table_and_query

N_THREADS = 8


class CountingBackend:
    """Counts how often each canonical query actually reaches the backend."""

    def __init__(self, inner, delay: float = 0.0):
        self.inner = inner
        self.delay = delay
        self.counts: dict[tuple, int] = {}
        self._lock = threading.Lock()

    @property
    def schema(self):
        return self.inner.schema

    @property
    def k(self):
        return self.inner.k

    def submit(self, query):
        key = query.canonical_key()
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + 1
        if self.delay:
            time.sleep(self.delay)
        return self.inner.submit(query)


def _query_sequence(schema, rng: random.Random, count: int):
    """Random queries with deliberate repeats and specialisations."""
    queries = [ConjunctiveQuery.empty(schema)]
    while len(queries) < count:
        roll = rng.random()
        if roll < 0.35 and len(queries) > 1:
            queries.append(rng.choice(queries))  # exact repeat
        elif roll < 0.6 and len(queries) > 1:
            base = rng.choice(queries)  # specialisation (inference bait)
            free = [a for a in schema if base.value_of(a.name) is None]
            if free:
                attribute = rng.choice(free)
                queries.append(
                    base.specialise(attribute.name, rng.choice(attribute.domain.values))
                )
                continue
            queries.append(base)
        else:
            assignment = {}
            for attribute in schema:
                if rng.random() < 0.5:
                    assignment[attribute.name] = rng.choice(attribute.domain.values)
            queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


class TestStripedEqualsSerial:
    @given(
        data=table_and_query(),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_concurrent_striped_answers_equal_serial_answers(self, data, k, seed):
        """The acceptance property: 8-way concurrent submits through a striped
        history return byte-for-byte what the serial layer returns."""
        schema, table, _ = data
        rng = random.Random(seed)
        queries = _query_sequence(schema, rng, 24)
        striped = HistoryLayer(
            HiddenDatabaseInterface(table, k=k, ranking=HashRanking("x"))
        )
        serial = HistoryLayer(
            HiddenDatabaseInterface(table, k=k, ranking=HashRanking("x")),
            stripes=1,
        )
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            concurrent_responses = list(pool.map(striped.submit, queries))
        serial_responses = [serial.submit(query) for query in queries]
        for concurrent, expected, query in zip(concurrent_responses, serial_responses, queries):
            assert concurrent == expected, str(query)

    def test_concurrent_submit_many_answers_equal_serial(self, tiny_table, tiny_schema):
        striped = HistoryLayer(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        )
        oracle = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        rng = random.Random(4)
        batches = [_query_sequence(tiny_schema, rng, 12) for _ in range(N_THREADS)]
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            all_responses = list(pool.map(striped.submit_many, batches))
        for batch, responses in zip(batches, all_responses):
            assert responses == [oracle.submit(query) for query in batch]


class TestInFlightGuard:
    def test_same_query_from_eight_threads_is_issued_once(self, tiny_table, tiny_schema):
        counting = CountingBackend(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()),
            delay=0.02,
        )
        layer = HistoryLayer(counting)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        barrier = threading.Barrier(N_THREADS)

        def hammer():
            barrier.wait()
            return layer.submit(query)

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            responses = [future.result() for future in [pool.submit(hammer) for _ in range(N_THREADS)]]
        assert counting.counts == {query.canonical_key(): 1}
        assert all(response == responses[0] for response in responses)
        stats = layer.statistics
        assert stats.submissions == N_THREADS
        assert stats.issued_to_interface == 1
        assert stats.saved == N_THREADS - 1

    def test_mixed_concurrent_workload_never_double_issues(self, tiny_table, tiny_schema):
        """Across an 8-thread hammering of a repeat-heavy workload, no
        canonical key is ever paid for twice (no eviction configured)."""
        counting = CountingBackend(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()),
            delay=0.002,
        )
        layer = HistoryLayer(counting)
        rng = random.Random(11)
        queries = _query_sequence(tiny_schema, rng, 60)
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(layer.submit, queries))
        assert all(count == 1 for count in counting.counts.values()), counting.counts

    def test_failed_issue_releases_waiters(self, tiny_schema, tiny_table):
        """If the issuing thread's submit raises, parked waiters wake up and
        issue for themselves instead of deadlocking."""
        from repro.exceptions import TransientBackendError

        class FailsOnce:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0
                self._lock = threading.Lock()

            @property
            def schema(self):
                return self.inner.schema

            @property
            def k(self):
                return self.inner.k

            def submit(self, query):
                with self._lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    time.sleep(0.02)
                    raise TransientBackendError("first issue dies")
                return self.inner.submit(query)

        flaky = FailsOnce(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        layer = HistoryLayer(flaky)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        barrier = threading.Barrier(2)
        outcomes = []

        def hammer():
            barrier.wait()
            try:
                outcomes.append(layer.submit(query))
            except TransientBackendError as error:
                outcomes.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads), "a waiter deadlocked"
        assert len(outcomes) == 2
        # At least one caller got the real answer; the failure surfaced at
        # most once (to the thread whose issue died).
        answers = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(answers) >= 1
        assert all(a == answers[0] for a in answers)


class TestBatchSemantics:
    def test_submit_many_dedupes_within_the_batch(self, tiny_table, tiny_schema):
        counting = CountingBackend(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        )
        layer = HistoryLayer(counting)
        a = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        b = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        responses = layer.submit_many([a, b, a, a, b])
        assert counting.counts == {a.canonical_key(): 1, b.canonical_key(): 1}
        assert responses[0] == responses[2] == responses[3]
        assert responses[1] == responses[4]
        stats = layer.statistics
        assert stats.submissions == 5
        assert stats.issued_to_interface == 2
        assert stats.exact_hits == 3
        # The statistics invariant a serial loop upholds survives batching.
        assert stats.submissions == stats.issued_to_interface + stats.saved

    def test_submit_many_answers_hits_and_inference_locally(self, tiny_table, tiny_schema):
        counting = CountingBackend(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        )
        layer = HistoryLayer(counting)
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        layer.submit(broad)  # valid: 2 tuples at k=2, no overflow
        issued_before = sum(counting.counts.values())
        narrow = broad.specialise("color", "red")
        responses = layer.submit_many([broad, narrow])
        assert sum(counting.counts.values()) == issued_before  # nothing forwarded
        oracle = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        assert responses == [oracle.submit(broad), oracle.submit(narrow)]

    def test_batch_matches_serial_loop(self, tiny_table, tiny_schema):
        rng = random.Random(21)
        queries = _query_sequence(tiny_schema, rng, 30)
        batched = HistoryLayer(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        looped = HistoryLayer(QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()))
        assert batched.submit_many(queries) == [looped.submit(q) for q in queries]
        # Savings may be smaller (a batch cannot infer item j from item i's
        # not-yet-issued answer) but never larger, and the accounting
        # invariant a serial loop upholds survives batching.
        batch_stats, loop_stats = batched.statistics, looped.statistics
        assert batch_stats.submissions == loop_stats.submissions == len(queries)
        assert batch_stats.saved <= loop_stats.saved
        assert (
            batch_stats.submissions
            == batch_stats.issued_to_interface + batch_stats.exact_hits + batch_stats.inferred
        )


class TestStripingConfiguration:
    def test_bounded_cache_collapses_to_one_stripe(self, tiny_interface):
        assert HistoryLayer(tiny_interface, max_entries=4).stripes == 1
        assert HistoryLayer(tiny_interface).stripes > 1

    def test_stripes_must_be_positive(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            HistoryLayer(tiny_interface, stripes=0)

    def test_single_stripe_still_coalesces_concurrent_submits(self, tiny_table, tiny_schema):
        counting = CountingBackend(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking()),
            delay=0.01,
        )
        layer = HistoryLayer(counting, stripes=1)
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"color": "red"})
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(layer.submit, [query] * 4))
        assert counting.counts == {query.canonical_key(): 1}


class TestBatchFaultHandling:
    """Review-batch regressions: outcomes flow through the layer chain."""

    def test_siblings_of_a_failed_item_are_still_cached(self, tiny_table, tiny_schema):
        """When one batch item fails permanently, the answers its siblings
        paid for are remembered — a retried batch re-pays only the failure."""
        from repro.exceptions import QueryBudgetExceededError

        inner = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        poison = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        issued: list[tuple] = []

        class OutcomeBackend:
            schema = inner.schema
            k = inner.k

            def submit(self, query):
                issued.append(query.canonical_key())
                if query.canonical_key() == poison.canonical_key():
                    raise QueryBudgetExceededError(1, 1)
                return inner.submit(query)

            def submit_outcomes(self, queries):
                outcomes = []
                for query in queries:
                    try:
                        outcomes.append(self.submit(query))
                    except Exception as error:
                        outcomes.append(error)
                return outcomes

        layer = HistoryLayer(OutcomeBackend())
        good_a = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        good_b = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        import pytest as _pytest

        with _pytest.raises(QueryBudgetExceededError):
            layer.submit_many([good_a, poison, good_b])
        paid = len(issued)
        # The two good answers were paid for once and are now cached:
        assert layer.submit(good_a) == inner.submit(good_a)
        assert layer.submit(good_b) == inner.submit(good_b)
        assert len(issued) == paid  # zero new round-trips
        assert layer.statistics.exact_hits == 2

    def test_unreliable_layer_heals_whole_batch_transport_failures(
        self, tiny_table, tiny_schema
    ):
        """A transient fault on the batched round-trip ITSELF (dropped POST,
        proxy 503) retries like per-item faults instead of escaping."""
        from repro.backends import UnreliableLayer
        from repro.exceptions import TransientBackendError

        inner = QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        calls = {"n": 0}

        class FlakyBatchBackend:
            schema = inner.schema
            k = inner.k

            def submit(self, query):
                return inner.submit(query)

            def submit_outcomes(self, queries):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise TransientBackendError("POST dropped mid-flight")
                return [inner.submit(query) for query in queries]

        layer = UnreliableLayer(FlakyBatchBackend(), max_retries=3, retry_backoff=0.0)
        queries = _query_sequence(tiny_schema, random.Random(31), 6)
        assert layer.submit_many(queries) == [inner.submit(q) for q in queries]
        assert calls["n"] == 2  # the one failed POST, then the healed retry
        assert layer.statistics.backend_transient_failures == len(queries)
        assert layer.statistics.gave_up == 0

"""Integration tests: the full HDSampler system on simulated hidden databases."""

import pytest

from repro.analytics.comparison import compare_marginals
from repro.analytics.skew import total_variation_distance
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.session import SessionState
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.stats import ground_truth_aggregate, ground_truth_marginal
from repro.datasets.vehicles import default_vehicles_ranking, vehicles_schema
from repro.web.client import WebFormClient
from repro.web.server import HiddenWebSite


@pytest.fixture(scope="module")
def vehicles_interface(small_vehicles_table):
    return HiddenDatabaseInterface(
        small_vehicles_table,
        k=100,
        ranking=default_vehicles_ranking(),
        count_mode=CountMode.NONE,
        display_columns=("title",),
        seed=0,
    )


class TestVehiclesDemoScenario:
    """The paper's demo: reveal the marginal distribution of the catalogue."""

    def test_marginals_track_ground_truth_at_low_skew(self, small_vehicles_table, vehicles_interface):
        config = HDSamplerConfig(
            n_samples=250,
            attributes=("make", "color", "condition"),
            tradeoff=TradeoffSlider(0.45),
            seed=42,
        )
        result = HDSampler(vehicles_interface, config).run()
        assert result.state is SessionState.COMPLETED

        truth = ground_truth_marginal(small_vehicles_table, "make")
        sampled = result.marginal_distribution("make")
        distance = total_variation_distance(sampled, truth)
        assert distance < 0.30
        # The most popular makes must be identified as such.
        top_true = sorted(truth, key=truth.get, reverse=True)[:3]
        top_sampled = sorted(sampled, key=sampled.get, reverse=True)[:6]
        assert set(top_true) <= set(top_sampled)

    def test_japanese_car_share_question(self, small_vehicles_table, vehicles_interface):
        """The motivating question of the paper's introduction."""
        config = HDSamplerConfig(n_samples=250, attributes=("make", "year"), tradeoff=TradeoffSlider(0.45), seed=7)
        result = HDSampler(vehicles_interface, config).run()
        japanese_makes = {"Toyota", "Honda", "Nissan", "Subaru", "Lexus", "Mazda"}
        sampled_share = sum(
            1 for s in result.samples if s.values["make"] in japanese_makes
        ) / result.sample_count
        true_share = sum(
            1 for row in small_vehicles_table if row["country"] == "Japan"
        ) / len(small_vehicles_table)
        assert abs(sampled_share - true_share) < 0.15

    def test_aggregate_average_price_is_in_the_right_ballpark(self, small_vehicles_table, vehicles_interface):
        config = HDSamplerConfig(n_samples=200, attributes=("make", "price"), tradeoff=TradeoffSlider(0.5), seed=9)
        result = HDSampler(vehicles_interface, config).run()
        estimate = result.aggregate("avg", measure_attribute="price")
        truth = ground_truth_aggregate(small_vehicles_table, "avg", "price")
        assert abs(estimate.value - truth) / truth < 0.5

    def test_history_cache_saves_queries_on_a_real_run(self, vehicles_interface):
        config = HDSamplerConfig(n_samples=100, attributes=("make", "color"), tradeoff=TradeoffSlider(0.6), seed=3)
        result = HDSampler(vehicles_interface, config).run()
        assert result.history_report is not None
        assert result.history_report["saved"] > 0
        assert result.queries_issued < result.generator_report["queries_issued"]


class TestSliderBehaviour:
    def test_higher_efficiency_costs_fewer_queries_per_sample(self, small_vehicles_table):
        costs = {}
        for position in (0.4, 1.0):
            interface = HiddenDatabaseInterface(
                small_vehicles_table, k=100, ranking=default_vehicles_ranking(), seed=0
            )
            config = HDSamplerConfig(
                n_samples=120, attributes=("make", "color", "body_style"),
                tradeoff=TradeoffSlider(position), seed=5,
            )
            result = HDSampler(interface, config).run()
            costs[position] = result.queries_per_sample
        assert costs[1.0] < costs[0.4]

    def test_lower_efficiency_gives_lower_skew(self, small_vehicles_table):
        distances = {}
        for position in (0.35, 1.0):
            interface = HiddenDatabaseInterface(
                small_vehicles_table, k=100, ranking=default_vehicles_ranking(), seed=0
            )
            config = HDSamplerConfig(
                n_samples=250, attributes=("make", "color"),
                tradeoff=TradeoffSlider(position), seed=6,
            )
            result = HDSampler(interface, config).run()
            truth = ground_truth_marginal(small_vehicles_table, "make")
            distances[position] = total_variation_distance(result.marginal_distribution("make"), truth)
        assert distances[0.35] <= distances[1.0] + 0.03


class TestWebFormPathEquivalence:
    """The backup-plan requirement: the scraping path behaves like the direct path."""

    def test_same_samples_through_html_and_direct_access(self, small_vehicles_table):
        schema = vehicles_schema()
        seed = 123

        direct = HiddenDatabaseInterface(
            small_vehicles_table, k=100, ranking=default_vehicles_ranking(),
            count_mode=CountMode.EXACT, display_columns=("title",), seed=0,
        )
        web_backend = HiddenDatabaseInterface(
            small_vehicles_table, k=100, ranking=default_vehicles_ranking(),
            count_mode=CountMode.EXACT, display_columns=("title",), seed=0,
        )
        site = HiddenWebSite(web_backend)
        client = WebFormClient(site, schema, display_columns=("title",))

        config = HDSamplerConfig(n_samples=60, attributes=("make", "color"), tradeoff=TradeoffSlider(0.7), seed=seed)
        direct_result = HDSampler(direct, config).run()
        web_result = HDSampler(client, config).run()

        # Same seed, same interface contract -> identical sampling decisions.
        assert [s.tuple_id for s in direct_result.samples] == [s.tuple_id for s in web_result.samples]
        assert direct_result.queries_issued == web_result.queries_issued
        assert direct_result.marginal_distribution("make") == web_result.marginal_distribution("make")

    def test_count_aided_sampler_through_the_web_path(self, small_vehicles_table):
        backend = HiddenDatabaseInterface(
            small_vehicles_table, k=400, ranking=default_vehicles_ranking(),
            count_mode=CountMode.EXACT, seed=0,
        )
        site = HiddenWebSite(backend)
        client = WebFormClient(site, vehicles_schema())
        config = HDSamplerConfig(
            n_samples=25, attributes=("make", "body_style"),
            algorithm=SamplerAlgorithm.COUNT_AIDED, seed=11,
        )
        result = HDSampler(client, config).run()
        assert result.sample_count == 25
        assert result.state is SessionState.COMPLETED


class TestBruteForceValidation:
    """Figure 4's validation: HDSampler marginals vs the uniform baseline."""

    def test_hdsampler_agrees_with_brute_force_on_a_small_database(self, boolean_table):
        interface_hd = HiddenDatabaseInterface(boolean_table, k=10, seed=0)
        interface_bf = HiddenDatabaseInterface(boolean_table, k=10, seed=0)

        hd = HDSampler(
            interface_hd,
            HDSamplerConfig(n_samples=200, tradeoff=TradeoffSlider(0.4), seed=21),
        ).run()
        bf = HDSampler(
            interface_bf,
            HDSamplerConfig(
                n_samples=200, algorithm=SamplerAlgorithm.BRUTE_FORCE,
                max_attempts=200_000, seed=22,
            ),
        ).run()

        assert hd.sample_count == bf.sample_count == 200
        hd_marginal = hd.marginal_distribution("a1")
        bf_marginal = bf.marginal_distribution("a1")
        assert total_variation_distance(hd_marginal, bf_marginal) < 0.15
        # Brute force is much more expensive per sample than HDSampler is on
        # a database whose leaves are mostly empty... on this small boolean
        # database the gap narrows, so only sanity-check both are finite.
        assert hd.queries_per_sample < float("inf")
        assert bf.queries_per_sample < float("inf")

    def test_comparison_report_against_ground_truth(self, boolean_table):
        interface = HiddenDatabaseInterface(boolean_table, k=10, seed=0)
        result = HDSampler(
            interface, HDSamplerConfig(n_samples=150, tradeoff=TradeoffSlider(0.5), seed=33)
        ).run()
        comparisons = compare_marginals(result.samples, boolean_table)
        assert set(comparisons) == set(boolean_table.schema.attribute_names)
        for comparison in comparisons.values():
            assert 0.0 <= comparison.total_variation <= 1.0

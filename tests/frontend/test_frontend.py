"""Unit tests for the front-end settings builder, dashboard and CLI."""

import pytest

from repro.core.config import SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.config import HDSamplerConfig
from repro.core.tradeoff import TradeoffSlider
from repro.exceptions import ConfigurationError
from repro.frontend.cli import build_parser, main
from repro.frontend.dashboard import Dashboard
from repro.frontend.settings import FrontEndSettings


class TestFrontEndSettings:
    def test_defaults_select_every_attribute(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        assert settings.selected_attributes == tiny_schema.attribute_names
        config = settings.build_config()
        assert config.attributes is None  # "all" is encoded as None

    def test_select_only_and_deselect(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.select_only("price", "make")
        assert settings.selected_attributes == ("make", "price")
        settings.deselect_attribute("price")
        assert settings.selected_attributes == ("make",)
        with pytest.raises(ConfigurationError):
            settings.deselect_attribute("make")

    def test_reselecting_keeps_schema_order(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.select_only("price")
        settings.select_attribute("make")
        assert settings.selected_attributes == ("make", "price")

    def test_bind_and_unbind_values(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.bind_value("color", "red")
        assert settings.bindings == {"color": "red"}
        assert "color" not in settings.selected_attributes
        config = settings.build_config()
        assert config.bindings == {"color": "red"}
        settings.unbind_value("color")
        assert settings.bindings == {}
        assert "color" in settings.selected_attributes

    def test_bind_validation(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        with pytest.raises(ConfigurationError):
            settings.bind_value("make", "Tesla")
        with pytest.raises(ConfigurationError):
            settings.unbind_value("make")

    def test_binding_a_selected_attribute_then_selecting_it_again_fails(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.bind_value("make", "Toyota")
        with pytest.raises(ConfigurationError):
            settings.select_attribute("make")

    def test_run_parameters(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.set_sample_count(42)
        settings.set_tradeoff(0.8)
        settings.set_algorithm("brute_force")
        settings.set_history_enabled(False)
        settings.set_seed(99)
        config = settings.build_config()
        assert config.n_samples == 42
        assert config.tradeoff.position == pytest.approx(0.8)
        assert config.algorithm is SamplerAlgorithm.BRUTE_FORCE
        assert not config.use_history
        assert config.seed == 99
        with pytest.raises(ConfigurationError):
            settings.set_sample_count(0)

    def test_describe_round_trips_through_config(self, tiny_schema):
        settings = FrontEndSettings(tiny_schema)
        settings.select_only("make")
        assert "make" in settings.describe()


class TestDashboard:
    def test_dashboard_tracks_progress_and_renders(self, tiny_interface):
        sampler = HDSampler(
            tiny_interface, HDSamplerConfig(n_samples=6, tradeoff=TradeoffSlider(1.0), seed=1)
        )
        dashboard = Dashboard(sampler, recent_samples=3, histogram_attributes=("make",))
        assert dashboard.render_progress_line() == "sampling not started"
        sampler.run()
        progress = dashboard.render_progress_line()
        assert "6/6 samples" in progress
        recent = dashboard.render_recent_samples()
        assert "make" in recent
        assert len(recent.splitlines()) <= 2 + 3  # header + separator + at most 3 rows
        full = dashboard.render()
        assert "samples" in full and "#" in full

    def test_dashboard_periodic_printing(self, tiny_interface):
        printed = []
        sampler = HDSampler(
            tiny_interface, HDSamplerConfig(n_samples=10, tradeoff=TradeoffSlider(1.0), seed=2)
        )
        Dashboard(sampler, printer=printed.append, print_every=5)
        sampler.run()
        assert len(printed) == 2  # at samples 5 and 10

    def test_recent_samples_validation(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=2, seed=3))
        with pytest.raises(ValueError):
            Dashboard(sampler, recent_samples=-1)

    def test_dashboard_renders_the_attached_backend_stack(self, tiny_table):
        from repro.backends import engine_stack
        from repro.database.limits import QueryBudget

        stack = engine_stack(tiny_table, k=2, budget=QueryBudget(limit=50), history=True)
        sampler = HDSampler(stack, HDSamplerConfig(n_samples=4, tradeoff=TradeoffSlider(1.0), seed=4))
        dashboard = Dashboard(sampler, backend=stack)
        sampler.run()
        line = dashboard.render_backend_line()
        assert "QueryEngineBackend" in line and "issued" in line
        assert "budget" in line and "history saved" in line

    def test_dashboard_backend_line_without_backend(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=2, seed=3))
        assert Dashboard(sampler).render_backend_line() == "no backend attached"


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "vehicles"
        assert args.samples == 100

    def test_cli_runs_the_boolean_demo(self, capsys):
        exit_code = main([
            "--dataset", "boolean", "--rows", "300", "--top-k", "10",
            "--samples", "15", "--tradeoff", "1.0", "--seed", "3",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "samples requested : 15" in captured.out
        assert "a1" in captured.out
        assert "queries/sample" in captured.out

    def test_cli_runs_vehicles_with_bindings_and_aggregate(self, capsys):
        exit_code = main([
            "--rows", "800", "--top-k", "50", "--samples", "20",
            "--tradeoff", "0.9", "--seed", "5",
            "--where", "condition=used",
            "--histogram", "make",
            "--aggregate", "avg", "--measure", "price",
            "--progress",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "AVG" in captured.out
        assert "make" in captured.out

    def test_cli_reports_errors_cleanly(self, capsys):
        exit_code = main(["--where", "notanattr"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_cli_rejects_unknown_binding_attribute(self, capsys):
        exit_code = main(["--rows", "100", "--samples", "5", "--where", "engine=V8"])
        assert exit_code == 2

    def test_cli_sharded_run_matches_unsharded(self, capsys):
        flags = ["--rows", "400", "--top-k", "20", "--samples", "10",
                 "--tradeoff", "1.0", "--seed", "6", "--histogram", "make"]
        assert main(flags + ["--shards", "1"]) == 0
        unsharded = capsys.readouterr().out
        assert main(flags + ["--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert "ShardRouter" in sharded and "ShardRouter" not in unsharded
        # Identical samples, histograms and query accounting either way.
        assert [l for l in sharded.splitlines() if "samples=" in l] == [
            l for l in unsharded.splitlines() if "samples=" in l
        ]
        assert [l for l in sharded.splitlines() if "|" in l and "issued" not in l] == [
            l for l in unsharded.splitlines() if "|" in l and "issued" not in l
        ]
        # Same queries issued, counted once, on either access path.
        assert [l for l in sharded.splitlines() if "issued" in l][0].endswith(
            [l for l in unsharded.splitlines() if "issued" in l][0].split("|")[-1]
        )

    def test_cli_rejects_bad_shard_count(self, capsys):
        assert main(["--rows", "100", "--samples", "5", "--shards", "0"]) == 2

    def test_cli_parallel_run_matches_serial(self, capsys):
        flags = ["--rows", "400", "--top-k", "20", "--samples", "10",
                 "--tradeoff", "1.0", "--seed", "6", "--shards", "4",
                 "--histogram", "make"]
        assert main(flags) == 0
        serial = capsys.readouterr().out
        assert main(flags + ["--parallel", "4"]) == 0
        parallel = capsys.readouterr().out
        assert "ConcurrentShardRouter" in parallel and "ConcurrentShardRouter" not in serial
        # Same samples and histograms: concurrency changed the wall clock only.
        assert [l for l in parallel.splitlines() if "samples=" in l] == [
            l for l in serial.splitlines() if "samples=" in l
        ]
        assert [l for l in parallel.splitlines() if "|" in l and "issued" not in l] == [
            l for l in serial.splitlines() if "|" in l and "issued" not in l
        ]

    def test_cli_rejects_parallel_without_shards(self, capsys):
        assert main(["--rows", "100", "--samples", "5", "--parallel", "4"]) == 2
        assert main(["--rows", "100", "--samples", "5", "--shards", "2",
                     "--parallel", "0"]) == 2

    def test_cli_rejects_batch_without_remote(self, capsys):
        # --batch configures the remote wire batch; silently ignoring it on a
        # local path would promise round-trip savings that never happen.
        assert main(["--rows", "100", "--samples", "5", "--batch", "8"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["--remote", "http://127.0.0.1:9", "--batch", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_samples_a_remote_endpoint_with_batch_and_parallel(self, capsys):
        """--remote now composes with --parallel/--batch: the stack carries a
        DispatchLayer cutting wire batches, and sampling works end to end."""
        from repro.backends import engine_stack
        from repro.datasets.vehicles import (
            VehiclesConfig,
            default_vehicles_ranking,
            generate_vehicles_table,
        )
        from repro.web.httpd import HiddenDatabaseHTTPServer

        table = generate_vehicles_table(VehiclesConfig(n_rows=300, seed=0))
        served = engine_stack(
            table, 100, ranking=default_vehicles_ranking(), statistics=False
        )
        with HiddenDatabaseHTTPServer(served) as endpoint:
            exit_code = main(
                ["--remote", endpoint.url, "--samples", "5", "--seed", "1",
                 "--parallel", "4", "--batch", "8"]
            )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "DispatchLayer" in captured.out
        assert "RemoteBackend" in captured.out
        assert "samples=5" in captured.out

    def test_cli_samples_a_remote_endpoint(self, capsys):
        from repro.backends import engine_stack
        from repro.datasets.vehicles import (
            VehiclesConfig,
            default_vehicles_ranking,
            generate_vehicles_table,
        )
        from repro.web.httpd import HiddenDatabaseHTTPServer

        table = generate_vehicles_table(VehiclesConfig(n_rows=300, seed=0))
        served = engine_stack(
            table, 100, ranking=default_vehicles_ranking(), statistics=False
        )
        with HiddenDatabaseHTTPServer(served) as endpoint:
            exit_code = main(["--remote", endpoint.url, "--samples", "5", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "RemoteBackend" in captured.out
        assert "samples=5" in captured.out

    def test_cli_lists_the_scenario_corpus(self, capsys):
        from repro.scenarios.corpus import build_corpus

        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario in build_corpus():
            assert scenario.name in out

    def test_cli_delegates_scenario_runs_to_the_harness(self, capsys):
        exit_code = main(["--scenario", "tiny_k"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "tiny_k" in captured.out
        assert "PASS" in captured.out

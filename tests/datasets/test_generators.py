"""Unit tests for the synthetic hidden-database generators."""

import pytest

from repro.database.schema import AttributeKind
from repro.datasets.boolean import BooleanConfig, boolean_schema, figure1_table, generate_boolean_table
from repro.datasets.categorical import CategoricalConfig, generate_categorical_table
from repro.datasets.mixed import MixedConfig, generate_mixed_table
from repro.datasets.vehicles import (
    VehiclesConfig,
    generate_vehicles_table,
    make_country,
    vehicles_schema,
)
from repro.exceptions import ConfigurationError


class TestVehicles:
    def test_schema_contains_the_google_base_style_attributes(self):
        schema = vehicles_schema()
        assert set(schema.attribute_names) == {
            "make", "model", "color", "year", "price", "mileage", "body_style", "condition",
        }
        assert schema.attribute("price").kind is AttributeKind.NUMERIC

    def test_optional_attributes_can_be_dropped(self):
        config = VehiclesConfig(include_condition=False, include_body_style=False)
        schema = vehicles_schema(config)
        assert "condition" not in schema and "body_style" not in schema

    def test_generation_is_reproducible_per_seed(self):
        a = generate_vehicles_table(VehiclesConfig(n_rows=50, seed=3))
        b = generate_vehicles_table(VehiclesConfig(n_rows=50, seed=3))
        c = generate_vehicles_table(VehiclesConfig(n_rows=50, seed=4))
        assert a.rows == b.rows
        assert a.rows != c.rows

    def test_rows_carry_hidden_columns(self):
        table = generate_vehicles_table(VehiclesConfig(n_rows=20, seed=0))
        row = table[0]
        assert {"country", "score", "title"} <= set(row)

    def test_rows_validate_against_the_schema(self):
        table = generate_vehicles_table(VehiclesConfig(n_rows=200, seed=1))
        # Table() already validates; spot-check the make/model consistency.
        assert len(table) == 200
        for row in table.rows[:50]:
            assert make_country(str(row["make"])) == row["country"]

    def test_make_marginal_is_skewed_toward_popular_makes(self):
        table = generate_vehicles_table(VehiclesConfig(n_rows=3_000, seed=5))
        counts = table.value_counts("make")
        assert counts["Toyota"] > counts["Volvo"]
        assert counts["Ford"] > counts["Audi"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VehiclesConfig(n_rows=0)
        with pytest.raises(ValueError):
            VehiclesConfig(make_skew=-1.0)


class TestBoolean:
    def test_schema_names_attributes_a1_to_an(self):
        schema = boolean_schema(4)
        assert schema.attribute_names == ("a1", "a2", "a3", "a4")

    def test_figure1_matches_the_paper(self):
        table = figure1_table()
        assert len(table) == 4
        assert [tuple(int(row[a]) for a in ("a1", "a2", "a3")) for row in table] == [
            (0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 1, 0),
        ]

    def test_iid_generation_has_expected_shape(self):
        table = generate_boolean_table(BooleanConfig(n_rows=300, n_attributes=5, seed=1))
        assert len(table) == 300
        assert len(table.schema) == 5
        assert all(isinstance(row["a1"], bool) for row in table.rows[:20])

    def test_zipf_distribution_skews_later_attributes_toward_false(self):
        config = BooleanConfig(n_rows=4_000, n_attributes=6, distribution="zipf", probability=0.6, skew=1.0, seed=2)
        table = generate_boolean_table(config)
        first = sum(1 for row in table if row["a1"]) / len(table)
        last = sum(1 for row in table if row["a6"]) / len(table)
        assert first > last

    def test_correlated_distribution_correlates_adjacent_attributes(self):
        config = BooleanConfig(n_rows=4_000, n_attributes=4, distribution="correlated", skew=0.9, seed=3)
        table = generate_boolean_table(config)
        agree = sum(1 for row in table if row["a1"] == row["a2"]) / len(table)
        assert agree > 0.8

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BooleanConfig(distribution="weird")
        with pytest.raises(ConfigurationError):
            BooleanConfig(probability=1.5)
        with pytest.raises(ConfigurationError):
            BooleanConfig(n_attributes=0)


class TestCategorical:
    def test_cardinalities_define_the_schema(self):
        table = generate_categorical_table(CategoricalConfig(n_rows=100, cardinalities=(3, 4), seed=0))
        assert table.schema.attribute_names == ("c1", "c2")
        assert table.schema.attribute("c2").cardinality == 4

    def test_zero_skew_is_roughly_uniform_and_high_skew_is_not(self):
        uniform = generate_categorical_table(
            CategoricalConfig(n_rows=5_000, cardinalities=(5,), skew=0.0, seed=1)
        )
        skewed = generate_categorical_table(
            CategoricalConfig(n_rows=5_000, cardinalities=(5,), skew=2.0, seed=1)
        )
        uniform_counts = sorted(uniform.value_counts("c1").values())
        skewed_counts = sorted(skewed.value_counts("c1").values())
        assert uniform_counts[0] > 0.7 * uniform_counts[-1]
        assert skewed_counts[-1] > 5 * max(skewed_counts[0], 1)

    def test_correlation_links_adjacent_columns(self):
        table = generate_categorical_table(
            CategoricalConfig(n_rows=3_000, cardinalities=(4, 4), skew=0.0, correlation=1.0, seed=2)
        )
        assert all(row["c1"] == row["c2"] for row in table.rows)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CategoricalConfig(cardinalities=())
        with pytest.raises(ConfigurationError):
            CategoricalConfig(cardinalities=(1,))
        with pytest.raises(ConfigurationError):
            CategoricalConfig(correlation=2.0)


class TestMixed:
    def test_schema_mixes_categorical_and_numeric(self):
        config = MixedConfig(n_rows=50, n_categorical=2, n_numeric=1, seed=0)
        table = generate_mixed_table(config)
        kinds = {a.name: a.kind for a in table.schema}
        assert kinds["cat1"] is AttributeKind.CATEGORICAL
        assert kinds["num1"] is AttributeKind.NUMERIC

    def test_numeric_values_fall_into_buckets(self):
        table = generate_mixed_table(MixedConfig(n_rows=500, seed=1))
        # Table construction validates bucket membership; also check counts add up.
        counts = table.value_counts("num1")
        assert sum(counts.values()) == 500

    def test_purely_categorical_and_purely_numeric_schemas_work(self):
        categorical_only = generate_mixed_table(MixedConfig(n_rows=20, n_numeric=0, seed=2))
        numeric_only = generate_mixed_table(MixedConfig(n_rows=20, n_categorical=0, seed=2))
        assert len(categorical_only.schema) == 3
        assert len(numeric_only.schema) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MixedConfig(n_categorical=0, n_numeric=0)
        with pytest.raises(ConfigurationError):
            MixedConfig(numeric_buckets=1)
        with pytest.raises(ConfigurationError):
            MixedConfig(numeric_scale=0.0)

"""The corpus contract and the runner driven end to end on a quick scenario."""

import json

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.scenarios.base import Hook, RunProfile, Scenario, fingerprint
from repro.scenarios.cli import main
from repro.scenarios.corpus import build_corpus
from repro.scenarios.report import REPORT_VERSION
from repro.scenarios.runner import ScenarioRunner


def corpus_by_name():
    return {scenario.name: scenario for scenario in build_corpus()}


class TestCorpusShape:
    def test_corpus_ships_at_least_eight_named_scenarios(self):
        corpus = build_corpus()
        names = [scenario.name for scenario in corpus]
        assert len(corpus) >= 8
        assert len(set(names)) == len(names)

    def test_every_scenario_documents_itself(self):
        for scenario in build_corpus():
            assert scenario.failure_mode, scenario.name
            assert scenario.invariant, scenario.name

    def test_the_acceptance_critical_scenarios_are_must_pass(self):
        by_name = corpus_by_name()
        for name in ("fault_85_retried", "server_kill_failover", "checkpoint_restore"):
            assert by_name[name].must_pass, name

    def test_identity_gated_scenarios_name_a_baseline(self):
        for scenario in build_corpus():
            if scenario.identical_to_baseline:
                assert scenario.baseline_recipe is not None, scenario.name


class TestDeclarationValidation:
    def test_unknown_hook_trigger_is_refused(self):
        with pytest.raises(ConfigurationError, match="trigger"):
            Hook(action=lambda env: None, trigger="on_tuesdays")

    def test_hook_fraction_outside_unit_interval_is_refused(self):
        with pytest.raises(ConfigurationError, match="at_fraction"):
            Hook(action=lambda env: None, at_fraction=1.5)

    def test_identity_gate_without_baseline_recipe_is_refused(self):
        template = corpus_by_name()["tiny_k"]
        with pytest.raises(ConfigurationError, match="baseline"):
            Scenario(
                name="orphaned",
                failure_mode="x",
                invariant="y",
                dataset=template.dataset,
                recipe=template.recipe,
                config=template.config,
                identical_to_baseline=True,
            )

    def test_duplicate_corpus_names_are_refused(self):
        scenario = corpus_by_name()["tiny_k"]
        with pytest.raises(ReproError, match="duplicate"):
            ScenarioRunner([scenario, scenario])

    def test_unknown_only_filter_is_refused(self):
        runner = ScenarioRunner(build_corpus(), quick=True)
        with pytest.raises(ReproError, match="no_such_scenario"):
            runner.run(only=["no_such_scenario"])


class TestRunnerEndToEnd:
    def test_quick_tiny_k_run_passes_and_is_deterministic(self):
        scenario = corpus_by_name()["tiny_k"]
        runner = ScenarioRunner([scenario], quick=True)
        first = runner.run_one(scenario)
        second = runner.run_one(scenario)
        assert first.classification == "PASS"
        assert any(gate.name == "completed" and gate.passed for gate in first.gates)
        assert first.metrics["samples"] > 0
        # Same seed, same scenario: everything but wall time is identical.
        a, b = first.as_dict(), second.as_dict()
        a.pop("wall_time"), b.pop("wall_time")
        assert a == b

    def test_profile_scaling_picks_the_quick_size(self):
        assert RunProfile(seed=1, quick=True).scaled(1000, 40) == 40
        assert RunProfile(seed=1, quick=False).scaled(1000, 40) == 1000

    def test_fingerprint_keys_ids_values_and_weights(self):
        class Draw:
            tuple_id = 7
            values = {"c1": "v0"}
            selection_probability = 0.5
            acceptance_probability = 0.25

        assert fingerprint([Draw()]) == [(7, (("c1", "v0"),), 0.5, 0.25)]


class TestCli:
    def test_list_prints_the_corpus_without_running_it(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for scenario in build_corpus():
            assert scenario.name in out

    def test_quick_single_scenario_check_writes_a_versioned_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["--quick", "--only", "tiny_k", "--check", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["version"] == REPORT_VERSION
        assert payload["meta"]["quick"] is True
        assert [entry["name"] for entry in payload["scenarios"]] == ["tiny_k"]
        assert "tiny_k" in capsys.readouterr().out

    def test_json_format_prints_the_payload(self, capsys):
        assert main(["--quick", "--only", "tiny_k", "--format", "json", "--out", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == REPORT_VERSION

    def test_unknown_scenario_name_exits_2(self, capsys):
        assert main(["--only", "no_such_scenario", "--out", "-"]) == 2
        assert "no_such_scenario" in capsys.readouterr().err

"""Scorer math: red/green chi-square pairs and recovery edge cases.

The uniformity scorer is checked against synthetic draws with a known
verdict (exactly-proportional draws must pass, a point mass must fail),
the critical-value approximation against classic table values, and the
recovery scorers against the edge cases the harness leans on: zero
samples, with-replacement duplicates, and restore divergence.
"""

from dataclasses import dataclass, field

import pytest

from repro.datasets.categorical import CategoricalConfig, generate_categorical_table
from repro.exceptions import ConfigurationError
from repro.scenarios.scorers import (
    MAX_SCORED_CARDINALITY,
    chi_square_critical,
    completion_gate,
    continuity_gates,
    cost_gate,
    identity_gates,
    multiset_divergence,
    scored_attributes,
    truth_proportions,
    uniformity_gates,
)


@dataclass
class FakeSample:
    """Just enough of a sample for the uniformity scorer."""

    selectable_values: dict = field(default_factory=dict)


def make_table(cardinalities=(5, 4, 3), n_rows=400, skew=1.0, seed=7):
    return generate_categorical_table(
        CategoricalConfig(
            n_rows=n_rows, cardinalities=cardinalities, skew=skew, seed=seed
        )
    )


def proportional_draws(table, attribute, copies=1):
    """Samples whose marginal exactly mirrors the ground truth (chi2 = 0)."""
    return [
        FakeSample({attribute: value})
        for value, count in table.value_counts(attribute).items()
        for _ in range(count * copies)
    ]


class TestChiSquareCritical:
    # Classic table values the Wilson–Hilferty approximation must stay
    # within a few percent of.
    @pytest.mark.parametrize(
        "df, alpha, expected",
        [
            (1, 0.05, 3.841),
            (4, 0.05, 9.488),
            (2, 0.01, 9.210),
            (2, 0.001, 13.816),
            (9, 0.001, 27.877),
        ],
    )
    def test_matches_table_values(self, df, alpha, expected):
        assert chi_square_critical(df, alpha) == pytest.approx(expected, rel=0.05)

    def test_zero_df_is_refused(self):
        with pytest.raises(ConfigurationError):
            chi_square_critical(0, 0.05)

    def test_unsupported_alpha_is_refused(self):
        with pytest.raises(ConfigurationError):
            chi_square_critical(3, 0.2)


class TestUniformityGates:
    def test_green_exactly_proportional_draws_pass(self):
        table = make_table(skew=1.3)
        samples = proportional_draws(table, "c1")
        gates, metrics = uniformity_gates(samples, table, attributes=("c1",))
        (gate,) = gates
        assert gate.passed
        assert metrics["max_chi_square"] == pytest.approx(0.0)
        assert metrics["max_skew_index"] == pytest.approx(0.0)

    def test_red_point_mass_fails_significance_and_skew_index(self):
        table = make_table()
        heaviest = max(
            table.value_counts("c1"), key=lambda v: table.value_counts("c1")[v]
        )
        samples = [FakeSample({"c1": heaviest}) for _ in range(len(table))]
        gates, metrics = uniformity_gates(samples, table, attributes=("c1",))
        (gate,) = gates
        assert not gate.passed
        # The skew index is sample-size free: a point mass on a value of
        # truth proportion p scores (1 - p) / p, far above any sane bound.
        assert metrics["max_skew_index"] > 1.0

    def test_zero_samples_fail_rather_than_vacuously_pass(self):
        table = make_table()
        gates, _ = uniformity_gates([], table, attributes=("c1",))
        assert all(not gate.passed for gate in gates)

    def test_soft_mode_marks_gates_non_hard(self):
        table = make_table()
        gates, _ = uniformity_gates([], table, attributes=("c1",), hard=False)
        assert all(not gate.hard for gate in gates)

    def test_skew_index_rescues_large_near_uniform_runs(self):
        # Many copies of the exact marginal, then one extra draw: the
        # statistic is tiny but nonzero.  At this n significance would be
        # borderline for a truly biased sampler; the bounded-skew arm is
        # what keeps a near-uniform run green.
        table = make_table(skew=1.2)
        samples = proportional_draws(table, "c2", copies=8)
        samples.append(FakeSample({"c2": samples[0].selectable_values["c2"]}))
        gates, metrics = uniformity_gates(samples, table, attributes=("c2",))
        (gate,) = gates
        assert gate.passed
        assert metrics["max_skew_index"] < 0.25

    def test_high_cardinality_attributes_are_skipped_by_default(self):
        table = make_table(cardinalities=(4, MAX_SCORED_CARDINALITY + 5))
        assert scored_attributes(table) == ("c1",)

    def test_truth_proportions_sum_to_one(self):
        table = make_table()
        assert sum(truth_proportions(table, "c1").values()) == pytest.approx(1.0)


class TestMultisetDivergence:
    def test_identical_multisets_diverge_nowhere(self):
        assert multiset_divergence(["a", "b", "b"], ["b", "a", "b"]) == {
            "lost": 0,
            "duplicated": 0,
        }

    def test_with_replacement_duplicates_are_legal_when_the_reference_drew_them(self):
        # The sampler draws with replacement: a twice-drawn tuple is not a
        # restore bug as long as the reference drew it twice too.
        assert multiset_divergence(["t1", "t1", "t2"], ["t1", "t2", "t1"]) == {
            "lost": 0,
            "duplicated": 0,
        }

    def test_missing_reference_sample_counts_as_lost(self):
        assert multiset_divergence(["a", "b"], ["a"]) == {"lost": 1, "duplicated": 0}

    def test_extra_copy_counts_as_duplicated(self):
        assert multiset_divergence(["a", "b"], ["a", "b", "b"]) == {
            "lost": 0,
            "duplicated": 1,
        }

    def test_zero_actual_samples_lose_the_whole_reference(self):
        assert multiset_divergence(["a", "b", "c"], []) == {"lost": 3, "duplicated": 0}

    def test_both_empty_is_clean(self):
        assert multiset_divergence([], []) == {"lost": 0, "duplicated": 0}


class TestIdentityGates:
    def test_identical_sequences_pass_all_three(self):
        gates = identity_gates(["a", "b"], ["a", "b"])
        assert [gate.passed for gate in gates] == [True, True, True]
        assert all(gate.hard for gate in gates)

    def test_reordering_fails_only_the_sequence_gate(self):
        by_name = {g.name: g for g in identity_gates(["a", "b"], ["b", "a"])}
        assert by_name["samples_lost_vs_baseline"].passed
        assert by_name["samples_duplicated_vs_baseline"].passed
        assert not by_name["sequence_identical_to_baseline"].passed


class TestContinuityGates:
    def test_clean_restore_passes(self):
        checkpoint = ["a", "b"]
        by_name = {
            g.name: g
            for g in continuity_gates(checkpoint, ["a", "b", "c"], resumed_from=2)
        }
        assert all(gate.passed for gate in by_name.values())
        assert set(by_name) == {
            "checkpoint_samples_lost",
            "checkpoint_prefix_preserved",
            "checkpoint_resumed_exactly_once",
        }

    def test_dropped_checkpoint_sample_is_lost(self):
        by_name = {
            g.name: g for g in continuity_gates(["a", "b"], ["a", "c"], resumed_from=2)
        }
        assert not by_name["checkpoint_samples_lost"].passed

    def test_reordered_prefix_fails_the_prefix_gate(self):
        by_name = {
            g.name: g
            for g in continuity_gates(["a", "b"], ["b", "a", "c"], resumed_from=2)
        }
        assert by_name["checkpoint_samples_lost"].passed
        assert not by_name["checkpoint_prefix_preserved"].passed

    def test_replayed_segment_fails_the_resume_gate(self):
        # A restore that replays the checkpointed segment reports a resume
        # point below the checkpoint size even though every sample is
        # present — the resume gate is what catches silent duplication.
        by_name = {
            g.name: g
            for g in continuity_gates(["a", "b"], ["a", "b", "a", "b"], resumed_from=0)
        }
        assert not by_name["checkpoint_resumed_exactly_once"].passed

    def test_without_resume_point_only_two_gates_apply(self):
        gates = continuity_gates(["a"], ["a", "b"])
        assert len(gates) == 2

    def test_empty_checkpoint_is_trivially_continuous(self):
        gates = continuity_gates([], ["a", "b"], resumed_from=0)
        assert all(gate.passed for gate in gates)


class TestCostGate:
    def test_no_baseline_means_no_gate(self):
        gate, metrics = cost_gate(3.0, None, max_ratio=1.5)
        assert gate is None
        assert metrics == {"queries_per_sample": 3.0}

    def test_ratio_within_bound_passes(self):
        gate, metrics = cost_gate(3.0, 2.0, max_ratio=2.0, hard=True)
        assert gate.passed
        assert gate.hard
        assert metrics["cost_ratio"] == pytest.approx(1.5)

    def test_ratio_over_bound_fails(self):
        gate, _ = cost_gate(5.0, 2.0, max_ratio=1.5)
        assert not gate.passed

    def test_without_bound_the_ratio_is_reported_but_always_passes(self):
        gate, metrics = cost_gate(9.0, 1.0, max_ratio=None)
        assert gate.passed
        assert metrics["cost_ratio"] == pytest.approx(9.0)

    def test_zero_baseline_with_positive_cost_is_infinite(self):
        gate, metrics = cost_gate(1.0, 0.0, max_ratio=10.0)
        assert not gate.passed
        assert metrics["cost_ratio"] == float("inf")


class TestCompletionGate:
    def test_done_at_target_passes(self):
        assert completion_gate(10, 10, done=True).passed

    def test_zero_samples_fail(self):
        assert not completion_gate(0, 10, done=False).passed

    def test_done_flag_alone_is_not_enough(self):
        assert not completion_gate(5, 10, done=True).passed

"""Report codec: versioned round-trips, classification, and rendering."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios.report import (
    REPORT_VERSION,
    Gate,
    ScenarioScore,
    classify,
    render_summary,
    report_from_dict,
    report_to_dict,
)


def make_score(name="fault_85", classification="PASS", **kwargs):
    defaults = dict(
        failure_mode="transient faults",
        classification=classification,
        gates=[
            Gate(name="completed", value="40/40 (done=True)", threshold="40/40", passed=True),
            Gate(name="uniformity:c1", value=3.2, threshold="chi2 <= 13.8", passed=True),
        ],
        metrics={"samples": 40, "cost_ratio": 1.0},
        notes={"hooks_fired": 1},
        wall_time=0.25,
        must_pass=True,
    )
    defaults.update(kwargs)
    return ScenarioScore(name=name, **defaults)


class TestClassify:
    def test_all_passing_gates_classify_pass(self):
        gates = [Gate("a", 1, 1, passed=True), Gate("b", 2, 2, passed=True, hard=False)]
        assert classify(gates) == "PASS"

    def test_failed_soft_gate_degrades(self):
        gates = [Gate("a", 1, 1, passed=True), Gate("b", 9, 2, passed=False, hard=False)]
        assert classify(gates) == "DEGRADED"

    def test_failed_hard_gate_fails_even_with_soft_failures(self):
        gates = [Gate("a", 9, 1, passed=False, hard=True), Gate("b", 9, 2, passed=False, hard=False)]
        assert classify(gates) == "FAIL"

    def test_no_gates_is_a_vacuous_pass(self):
        assert classify([]) == "PASS"


class TestCodecRoundTrips:
    def test_gate_survives_a_json_round_trip(self):
        gate = Gate(name="cost_ratio_vs_baseline", value=1.04, threshold="<= 1.05", passed=True, hard=False)
        assert Gate.from_dict(json.loads(json.dumps(gate.as_dict()))) == gate

    def test_score_survives_a_json_round_trip(self):
        score = make_score()
        decoded = ScenarioScore.from_dict(json.loads(json.dumps(score.as_dict())))
        assert decoded == score

    def test_report_round_trips_version_meta_and_scores(self):
        scores = [make_score(), make_score(name="tiny_k", classification="DEGRADED", must_pass=False)]
        payload = json.loads(json.dumps(report_to_dict(scores, meta={"seed": 1, "quick": True})))
        assert payload["version"] == REPORT_VERSION
        assert payload["summary"] == {"PASS": 1, "DEGRADED": 1, "FAIL": 0}
        meta, decoded = report_from_dict(payload)
        assert meta == {"seed": 1, "quick": True}
        assert decoded == scores

    def test_unknown_report_version_is_a_typed_refusal(self):
        payload = report_to_dict([make_score()])
        payload["version"] = REPORT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            report_from_dict(payload)

    def test_missing_version_is_also_refused(self):
        with pytest.raises(ConfigurationError):
            report_from_dict({"scenarios": []})

    def test_unknown_classification_is_refused(self):
        payload = make_score().as_dict()
        payload["classification"] = "MEH"
        with pytest.raises(ConfigurationError, match="classification"):
            ScenarioScore.from_dict(payload)

    def test_gate_hard_defaults_true_when_absent(self):
        gate = Gate.from_dict({"name": "g", "passed": True})
        assert gate.hard


class TestRenderSummary:
    def test_table_names_every_scenario_and_counts_verdicts(self):
        scores = [
            make_score(),
            make_score(
                name="drifting_data",
                classification="DEGRADED",
                must_pass=False,
                gates=[Gate("uniformity:c1", 99.0, "chi2", passed=False, hard=False)],
            ),
        ]
        rendered = render_summary(scores)
        assert "fault_85" in rendered
        assert "drifting_data" in rendered
        assert "1 pass, 1 degraded, 0 fail" in rendered
        # Failed gates are listed on their row; must-pass rows are starred.
        assert "uniformity:c1" in rendered
        assert "PASS *" in rendered

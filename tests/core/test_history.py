"""Unit tests for the query-history cache and inference optimisation."""

import pytest

from repro.core.history import CachedResponseSource, QueryHistoryCache
from repro.exceptions import ConfigurationError
from repro.database.interface import HiddenDatabaseInterface
from repro.database.query import ConjunctiveQuery


@pytest.fixture()
def cached(tiny_interface):
    return QueryHistoryCache(tiny_interface)


class TestExactHits:
    def test_identical_query_is_not_reissued(self, cached, tiny_schema, tiny_interface):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        first = cached.submit(query)
        issued_after_first = tiny_interface.statistics.queries_issued
        second = cached.submit(query)
        assert tiny_interface.statistics.queries_issued == issued_after_first
        assert cached.last_source is CachedResponseSource.EXACT_HIT
        assert [t.tuple_id for t in second.tuples] == [t.tuple_id for t in first.tuples]

    def test_predicate_order_does_not_matter_for_the_cache(self, cached, tiny_schema, tiny_interface):
        a = ConjunctiveQuery.empty(tiny_schema).specialise("make", "Ford").specialise("color", "red")
        b = ConjunctiveQuery.empty(tiny_schema).specialise("color", "red").specialise("make", "Ford")
        cached.submit(a)
        issued = tiny_interface.statistics.queries_issued
        cached.submit(b)
        assert tiny_interface.statistics.queries_issued == issued


class TestInference:
    def test_specialisation_of_a_valid_query_is_inferred(self, cached, tiny_schema, tiny_interface):
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        cached.submit(broad)  # valid: 2 tuples, no overflow
        issued = tiny_interface.statistics.queries_issued
        narrow = broad.specialise("color", "red")
        response = cached.submit(narrow)
        assert tiny_interface.statistics.queries_issued == issued
        assert cached.last_source is CachedResponseSource.INFERRED
        assert len(response.tuples) == 1
        assert response.tuples[0].selectable_values["color"] == "red"
        assert not response.overflow

    def test_inferred_answer_matches_the_real_interface(self, cached, tiny_schema, tiny_table):
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota", "color": "red"})
        cached.submit(broad)
        narrow = broad.specialise("price", "0-10000")
        inferred = cached.submit(narrow)
        fresh_interface = HiddenDatabaseInterface(tiny_table, k=2)
        direct = fresh_interface.submit(narrow)
        assert sorted(t.tuple_id for t in inferred.tuples) == sorted(t.tuple_id for t in direct.tuples)

    def test_specialisation_of_an_empty_query_is_inferred_empty(self, cached, tiny_schema, tiny_interface):
        empty = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "price": "0-10000"})
        cached.submit(empty)
        issued = tiny_interface.statistics.queries_issued
        narrower = empty.specialise("color", "blue")
        response = cached.submit(narrower)
        assert tiny_interface.statistics.queries_issued == issued
        assert response.empty
        assert cached.last_source is CachedResponseSource.INFERRED

    def test_overflowing_queries_are_never_used_for_subset_inference(self, cached, tiny_schema, tiny_interface):
        overflowing = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Toyota"})
        cached.submit(overflowing)  # 4 tuples > k=2: overflow
        issued = tiny_interface.statistics.queries_issued
        narrow = overflowing.specialise("color", "red")
        cached.submit(narrow)
        # The narrow query had to be issued for real.
        assert tiny_interface.statistics.queries_issued == issued + 1
        assert cached.last_source is CachedResponseSource.INTERFACE

    def test_statistics_accumulate(self, cached, tiny_schema):
        broad = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        cached.submit(broad)
        cached.submit(broad)
        cached.submit(broad.specialise("color", "red"))
        stats = cached.statistics
        assert stats.submissions == 3
        assert stats.issued_to_interface == 1
        assert stats.exact_hits == 1
        assert stats.inferred == 1
        assert stats.saved == 2
        assert stats.saving_ratio == pytest.approx(2 / 3)
        as_dict = stats.as_dict()
        assert as_dict["saved"] == 2


class TestCacheMaintenance:
    def test_clear_forgets_responses_but_keeps_statistics(self, cached, tiny_schema, tiny_interface):
        query = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        cached.submit(query)
        cached.clear()
        assert len(cached) == 0
        issued = tiny_interface.statistics.queries_issued
        cached.submit(query)
        assert tiny_interface.statistics.queries_issued == issued + 1
        assert cached.statistics.submissions == 2

    def test_max_entries_evicts_oldest(self, tiny_interface, tiny_schema):
        cached = QueryHistoryCache(tiny_interface, max_entries=1)
        first = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        second = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        cached.submit(first)
        cached.submit(second)
        assert len(cached) == 1
        issued = tiny_interface.statistics.queries_issued
        cached.submit(first)  # was evicted, must be reissued
        assert tiny_interface.statistics.queries_issued == issued + 1

    def test_max_entries_must_be_positive(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            QueryHistoryCache(tiny_interface, max_entries=0)

    def test_inference_mode_is_validated(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            QueryHistoryCache(tiny_interface, inference="magic")

    def test_eviction_keeps_key_indexes_consistent(self, tiny_interface, tiny_schema):
        """Evicted keys disappear from the valid/empty indexes in O(1) and can
        no longer be used for inference."""
        cached = QueryHistoryCache(tiny_interface, max_entries=2)
        valid = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        empty = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda", "price": "0-10000"})
        cached.submit(valid)   # valid entry
        cached.submit(empty)   # empty entry
        assert cached.valid_keys() == {valid.canonical_key()}
        assert cached.empty_keys() == {empty.canonical_key()}
        # A third distinct entry evicts the oldest (the valid one).
        other = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        cached.submit(other)
        assert len(cached) == 2
        assert valid.canonical_key() not in cached.valid_keys()
        # The evicted valid ancestor must no longer feed subset inference.
        issued = tiny_interface.statistics.queries_issued
        cached.submit(valid.specialise("color", "red"))
        assert tiny_interface.statistics.queries_issued == issued + 1

    def test_reimporting_existing_entries_does_not_evict_others(self, tiny_table, tiny_schema):
        """Overwriting a cached key in place (checkpoint re-import) must not
        push an unrelated entry out of a full cache."""
        from repro.database.interface import HiddenDatabaseInterface

        interface = HiddenDatabaseInterface(tiny_table, k=2)
        cached = QueryHistoryCache(interface, max_entries=2)
        first = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Ford"})
        second = ConjunctiveQuery.from_assignment(tiny_schema, {"make": "Honda"})
        cached.submit(first)
        cached.submit(second)
        snapshot = cached.export_entries()
        assert cached.import_entries(snapshot) == 2
        assert len(cached) == 2
        # Both original entries are still answerable without the interface.
        issued = interface.statistics.queries_issued
        cached.submit(first)
        cached.submit(second)
        assert interface.statistics.queries_issued == issued

    def test_cache_exposes_schema_k_and_inner(self, cached, tiny_interface):
        assert cached.schema == tiny_interface.schema
        assert cached.k == tiny_interface.k
        assert cached.inner is tiny_interface

"""Unit tests for the Sample Generator, Sample Processor and Output Module."""

import pytest

from repro.algorithms.base import Candidate, SampleRecord, WalkTrace
from repro.algorithms.brute_force import BruteForceSampler
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.output import OutputModule
from repro.core.sample_generator import SampleGenerator
from repro.core.sample_processor import SampleProcessor
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.exceptions import ConfigurationError, SamplingError


def _make_sample(tuple_id: int, make: str, price: float, price_bucket: str) -> SampleRecord:
    return SampleRecord(
        tuple_id=tuple_id,
        values={"make": make, "price": price},
        selectable_values={"make": make, "price": price_bucket},
        selection_probability=0.1,
        acceptance_probability=1.0,
        queries_spent=2,
        source="test",
    )


class TestSampleGenerator:
    def test_builds_the_configured_algorithm(self, tiny_interface):
        for algorithm, name in [
            (SamplerAlgorithm.RANDOM_WALK, "hidden-db-sampler"),
            (SamplerAlgorithm.BRUTE_FORCE, "brute-force-sampler"),
        ]:
            generator = SampleGenerator(tiny_interface, HDSamplerConfig(algorithm=algorithm))
            assert generator.sampler.name == name

    def test_count_aided_algorithm_requires_counts_exposed(self, tiny_table):
        interface = HiddenDatabaseInterface(tiny_table, k=2, count_mode=CountMode.EXACT)
        generator = SampleGenerator(
            interface, HDSamplerConfig(algorithm=SamplerAlgorithm.COUNT_AIDED, seed=1)
        )
        candidate = None
        for _ in range(50):
            candidate = generator.next_candidate()
            if candidate is not None:
                break
        assert candidate is not None

    def test_history_cache_is_wired_in_by_default(self, tiny_interface):
        generator = SampleGenerator(tiny_interface, HDSamplerConfig())
        assert generator.history is not None
        assert generator.database is generator.history

    def test_history_can_be_disabled(self, tiny_interface):
        generator = SampleGenerator(tiny_interface, HDSamplerConfig(use_history=False))
        assert generator.history is None
        assert generator.database is generator.scoped

    def test_scoping_is_applied(self, tiny_interface):
        config = HDSamplerConfig(attributes=("make",), bindings={"color": "red"})
        generator = SampleGenerator(tiny_interface, config)
        assert generator.database.schema.attribute_names == ("make",)

    def test_budget_exhaustion_is_absorbed(self, tiny_table):
        interface = HiddenDatabaseInterface(tiny_table, k=2, budget=QueryBudget(limit=3))
        generator = SampleGenerator(interface, HDSamplerConfig(use_history=False, seed=0))
        for _ in range(30):
            generator.next_candidate()
        assert generator.budget_exhausted
        assert generator.next_candidate() is None

    def test_interface_queries_issued_counts_real_queries_only(self, tiny_interface):
        generator = SampleGenerator(tiny_interface, HDSamplerConfig(seed=1))
        for _ in range(30):
            generator.next_candidate()
        issued = generator.interface_queries_issued()
        assert issued == tiny_interface.statistics.queries_issued
        assert issued <= generator.report.queries_issued


class TestSampleProcessor:
    def _candidate(self, tuple_id: int = 1, probability: float = 0.25) -> Candidate:
        return Candidate(
            tuple_id=tuple_id,
            values={"make": "Ford"},
            selectable_values={"make": "Ford"},
            selection_probability=probability,
            trace=WalkTrace(steps=(), attribute_order=()),
            source="test",
        )

    class _FixedAcceptanceSampler:
        """A stand-in sampler whose acceptance probability is a constant."""

        def __init__(self, probability: float) -> None:
            self.probability = probability

        def acceptance_probability(self, candidate: Candidate) -> float:
            return self.probability

    def test_accepts_and_rejects_according_to_the_sampler(self):
        always = SampleProcessor(self._FixedAcceptanceSampler(1.0), seed=0)
        never = SampleProcessor(self._FixedAcceptanceSampler(0.0), seed=0)
        assert always.process(self._candidate()) is not None
        assert never.process(self._candidate()) is None
        assert always.statistics.accepted == 1
        assert never.statistics.rejected == 1

    def test_sample_record_carries_probabilities_and_cost(self):
        processor = SampleProcessor(self._FixedAcceptanceSampler(1.0), seed=0)
        record = processor.process(self._candidate(probability=0.125))
        assert record.selection_probability == pytest.approx(0.125)
        assert record.acceptance_probability == 1.0
        assert record.source == "test"

    def test_deduplication_drops_repeat_tuples(self):
        processor = SampleProcessor(self._FixedAcceptanceSampler(1.0), deduplicate=True, seed=0)
        assert processor.process(self._candidate(tuple_id=7)) is not None
        assert processor.process(self._candidate(tuple_id=7)) is None
        assert processor.statistics.duplicates_dropped == 1

    def test_reset_clears_state(self):
        processor = SampleProcessor(self._FixedAcceptanceSampler(1.0), deduplicate=True, seed=0)
        processor.process(self._candidate(tuple_id=7))
        processor.reset()
        assert processor.statistics.candidates_seen == 0
        assert processor.process(self._candidate(tuple_id=7)) is not None

    def test_acceptance_rate_statistic(self):
        processor = SampleProcessor(self._FixedAcceptanceSampler(0.5), seed=3)
        for _ in range(200):
            processor.process(self._candidate())
        assert 0.3 < processor.statistics.acceptance_rate < 0.7


class TestOutputModule:
    def test_histograms_update_incrementally(self, tiny_schema):
        output = OutputModule(tiny_schema)
        output.add(_make_sample(0, "Toyota", 5_000.0, "0-10000"))
        output.add(_make_sample(1, "Toyota", 15_000.0, "10000-20000"))
        output.add(_make_sample(2, "Ford", 5_000.0, "0-10000"))
        histogram = output.histogram("make")
        assert histogram.count("Toyota") == 2
        assert histogram.count("Ford") == 1
        assert histogram.count("Honda") == 0
        assert output.marginal_distribution("make")["Toyota"] == pytest.approx(2 / 3)

    def test_unknown_attribute_is_rejected(self, tiny_schema):
        output = OutputModule(tiny_schema)
        with pytest.raises(ConfigurationError):
            output.histogram("engine")

    def test_count_aggregate_without_population_size_is_a_fraction(self, tiny_schema):
        output = OutputModule(tiny_schema)
        output.extend([
            _make_sample(0, "Toyota", 5_000.0, "0-10000"),
            _make_sample(1, "Ford", 15_000.0, "10000-20000"),
            _make_sample(2, "Toyota", 25_000.0, "20000-40000"),
            _make_sample(3, "Toyota", 5_000.0, "0-10000"),
        ])
        estimate = output.aggregate("count", condition={"make": "Toyota"})
        assert estimate.relative
        assert estimate.value == pytest.approx(0.75)

    def test_count_aggregate_scales_with_population_size(self, tiny_schema):
        output = OutputModule(tiny_schema, population_size=1_000)
        output.extend([
            _make_sample(0, "Toyota", 5_000.0, "0-10000"),
            _make_sample(1, "Ford", 15_000.0, "10000-20000"),
        ])
        estimate = output.aggregate("count", condition={"make": "Toyota"})
        assert not estimate.relative
        assert estimate.value == pytest.approx(500.0)

    def test_avg_and_sum_aggregates(self, tiny_schema):
        output = OutputModule(tiny_schema, population_size=100)
        output.extend([
            _make_sample(0, "Toyota", 10_000.0, "10000-20000"),
            _make_sample(1, "Toyota", 20_000.0, "20000-40000"),
            _make_sample(2, "Ford", 30_000.0, "20000-40000"),
        ])
        avg = output.aggregate("avg", measure_attribute="price", condition={"make": "Toyota"})
        assert avg.value == pytest.approx(15_000.0)
        total = output.aggregate("sum", measure_attribute="price")
        assert total.value == pytest.approx(100 * 20_000.0)

    def test_aggregate_validation(self, tiny_schema):
        output = OutputModule(tiny_schema)
        output.add(_make_sample(0, "Toyota", 10_000.0, "10000-20000"))
        with pytest.raises(ConfigurationError):
            output.aggregate("median")
        with pytest.raises(ConfigurationError):
            output.aggregate("sum")
        from repro.exceptions import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            output.aggregate("count", condition={"engine": "V8"})

    def test_render_histogram_and_summary(self, tiny_schema):
        output = OutputModule(tiny_schema)
        output.add(_make_sample(0, "Toyota", 5_000.0, "0-10000"))
        assert "Toyota" in output.render_histogram("make")
        assert "1 samples collected" in output.render_summary()

"""Unit tests for the incremental sampling session and the HDSampler facade."""

import pytest

from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.session import SamplingSession, SessionState
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.database.ranking import StaticScoreRanking


class TestSamplingSession:
    def test_runs_to_completion_and_reaches_the_requested_count(self, tiny_interface):
        config = HDSamplerConfig(n_samples=10, tradeoff=TradeoffSlider(0.9), seed=1)
        session = SamplingSession(tiny_interface, config)
        output = session.run()
        assert session.state is SessionState.COMPLETED
        assert len(output) == 10

    def test_progress_events_are_emitted_per_accepted_sample(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, tradeoff=TradeoffSlider(1.0), seed=2)
        session = SamplingSession(tiny_interface, config)
        events = []
        session.on_progress(events.append)
        session.run()
        # One event per accepted sample plus the terminal event.
        assert len(events) == 6
        assert events[0].samples_collected == 1
        assert events[-1].state is SessionState.COMPLETED
        assert events[-1].last_sample is None
        assert 0.0 <= events[0].fraction_done <= 1.0

    def test_kill_switch_stops_the_run(self, tiny_interface):
        config = HDSamplerConfig(n_samples=1_000, tradeoff=TradeoffSlider(1.0), seed=3)
        session = SamplingSession(tiny_interface, config)

        def stop_after_three(event):
            if event.samples_collected >= 3:
                session.stop()

        session.on_progress(stop_after_three)
        output = session.run()
        assert session.state is SessionState.STOPPED
        assert session.stopped
        assert 3 <= len(output) < 1_000

    def test_max_attempts_exhaustion(self, tiny_interface):
        config = HDSamplerConfig(n_samples=10_000, max_attempts=20, seed=4)
        session = SamplingSession(tiny_interface, config)
        session.run()
        assert session.state is SessionState.EXHAUSTED
        assert session.attempts <= 21

    def test_budget_exhaustion(self, tiny_table):
        interface = HiddenDatabaseInterface(
            tiny_table, k=2, ranking=StaticScoreRanking(), budget=QueryBudget(limit=15)
        )
        config = HDSamplerConfig(n_samples=10_000, tradeoff=TradeoffSlider(1.0), seed=5)
        session = SamplingSession(interface, config)
        session.run()
        assert session.state is SessionState.EXHAUSTED
        assert interface.budget.issued <= 15

    def test_step_returns_the_accepted_sample_or_none(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, tradeoff=TradeoffSlider(1.0), seed=6)
        session = SamplingSession(tiny_interface, config)
        results = [session.step() for _ in range(30)]
        accepted = [r for r in results if r is not None]
        assert accepted
        assert len(session.output) == len(accepted)


class TestHDSamplerFacade:
    def test_run_produces_a_complete_result_bundle(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=8, tradeoff=TradeoffSlider(0.8), seed=7))
        result = sampler.run()
        assert result.state is SessionState.COMPLETED
        assert result.sample_count == 8
        assert result.queries_issued > 0
        assert result.queries_per_sample == pytest.approx(result.queries_issued / 8)
        assert result.history_report is not None
        summary = result.summary()
        assert summary["samples"] == 8
        assert "generator_queries_issued" in summary
        assert "history_saved" in summary

    def test_histogram_and_marginals_via_the_result(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=12, tradeoff=TradeoffSlider(0.9), seed=8))
        result = sampler.run()
        histogram = result.histogram("make")
        assert histogram.total == 12
        marginal = result.marginal_distribution("make")
        assert sum(marginal.values()) == pytest.approx(1.0)
        assert "make" in result.render_histogram("make")

    def test_aggregate_via_the_result(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=15, tradeoff=TradeoffSlider(0.9), seed=9))
        result = sampler.run()
        estimate = result.aggregate("avg", measure_attribute="price")
        assert 0.0 < estimate.value < 40_000.0

    def test_scoped_schema_is_visible_on_the_facade(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, attributes=("make", "color"), seed=10)
        sampler = HDSampler(tiny_interface, config)
        assert sampler.schema.attribute_names == ("make", "color")

    def test_history_report_absent_when_disabled(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, use_history=False, tradeoff=TradeoffSlider(1.0), seed=11)
        result = HDSampler(tiny_interface, config).run()
        assert result.history_report is None

    def test_stop_before_run_is_honoured(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=50, seed=12))
        sampler.stop()
        result = sampler.run()
        assert result.state is SessionState.STOPPED
        assert result.sample_count == 0

    def test_brute_force_algorithm_through_the_facade(self, tiny_interface):
        config = HDSamplerConfig(
            n_samples=5, algorithm=SamplerAlgorithm.BRUTE_FORCE, max_attempts=5_000, seed=13
        )
        result = HDSampler(tiny_interface, config).run()
        assert result.sample_count == 5

    def test_bindings_restrict_the_sampled_population(self, tiny_interface):
        config = HDSamplerConfig(
            n_samples=6, bindings={"make": "Toyota"}, tradeoff=TradeoffSlider(1.0), seed=14
        )
        result = HDSampler(tiny_interface, config).run()
        assert all(sample.values["make"] == "Toyota" for sample in result.samples)

    def test_queries_per_sample_with_zero_samples_is_infinite(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=3, max_attempts=1, seed=15))
        result = sampler.run()
        if result.sample_count == 0:
            assert result.queries_per_sample == float("inf")

"""Unit tests for the incremental sampling session and the HDSampler facade."""

import pytest

from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.result import SamplingResult
from repro.core.session import ProgressEvent, SamplingSession, SessionState
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.database.ranking import StaticScoreRanking
from repro.exceptions import ConfigurationError, SessionStateError


class TestSamplingSession:
    def test_runs_to_completion_and_reaches_the_requested_count(self, tiny_interface):
        config = HDSamplerConfig(n_samples=10, tradeoff=TradeoffSlider(0.9), seed=1)
        session = SamplingSession(tiny_interface, config)
        output = session.run()
        assert session.state is SessionState.COMPLETED
        assert len(output) == 10

    def test_progress_events_are_emitted_per_accepted_sample(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, tradeoff=TradeoffSlider(1.0), seed=2)
        session = SamplingSession(tiny_interface, config)
        events = []
        session.on_progress(events.append)
        session.run()
        # One event per accepted sample plus the terminal event.
        assert len(events) == 6
        assert events[0].samples_collected == 1
        assert events[-1].state is SessionState.COMPLETED
        assert events[-1].last_sample is None
        assert 0.0 <= events[0].fraction_done <= 1.0

    def test_kill_switch_stops_the_run(self, tiny_interface):
        config = HDSamplerConfig(n_samples=1_000, tradeoff=TradeoffSlider(1.0), seed=3)
        session = SamplingSession(tiny_interface, config)

        def stop_after_three(event):
            if event.samples_collected >= 3:
                session.stop()

        session.on_progress(stop_after_three)
        output = session.run()
        assert session.state is SessionState.STOPPED
        assert session.stopped
        assert 3 <= len(output) < 1_000

    def test_max_attempts_exhaustion(self, tiny_interface):
        config = HDSamplerConfig(n_samples=10_000, max_attempts=20, seed=4)
        session = SamplingSession(tiny_interface, config)
        session.run()
        assert session.state is SessionState.EXHAUSTED
        assert session.attempts <= 21

    def test_budget_exhaustion(self, tiny_table):
        interface = HiddenDatabaseInterface(
            tiny_table, k=2, ranking=StaticScoreRanking(), budget=QueryBudget(limit=15)
        )
        config = HDSamplerConfig(n_samples=10_000, tradeoff=TradeoffSlider(1.0), seed=5)
        session = SamplingSession(interface, config)
        session.run()
        assert session.state is SessionState.EXHAUSTED
        assert interface.budget.issued <= 15

    def test_step_returns_the_accepted_sample_or_none(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, tradeoff=TradeoffSlider(1.0), seed=6)
        session = SamplingSession(tiny_interface, config)
        results = []
        while not session.terminal:
            results.append(session.step())
        accepted = [r for r in results if r is not None]
        assert accepted
        assert len(session.output) == len(accepted) == 5
        assert session.state is SessionState.COMPLETED

    def test_step_updates_state_and_raises_once_terminal(self, tiny_interface):
        config = HDSamplerConfig(n_samples=2, tradeoff=TradeoffSlider(1.0), seed=16)
        session = SamplingSession(tiny_interface, config)
        assert session.state is SessionState.READY
        session.step()
        assert session.state in (SessionState.RUNNING, SessionState.COMPLETED)
        while not session.terminal:
            session.step()
        assert session.state is SessionState.COMPLETED
        with pytest.raises(SessionStateError):
            session.step()

    def test_run_on_a_finished_session_raises(self, tiny_interface):
        config = HDSamplerConfig(n_samples=3, tradeoff=TradeoffSlider(1.0), seed=17)
        session = SamplingSession(tiny_interface, config)
        session.run()
        assert session.state is SessionState.COMPLETED
        with pytest.raises(SessionStateError):
            session.run()

    def test_pause_resume_round_trip(self, tiny_interface):
        config = HDSamplerConfig(n_samples=6, tradeoff=TradeoffSlider(1.0), seed=18)
        session = SamplingSession(tiny_interface, config)
        session.step()
        session.pause()
        assert session.state is SessionState.PAUSED
        with pytest.raises(SessionStateError):
            session.step()
        session.resume()
        output = session.run()
        assert session.state is SessionState.COMPLETED
        assert len(output) == 6
        with pytest.raises(SessionStateError):
            session.pause()

    def test_extend_target_reopens_a_completed_session(self, tiny_interface):
        config = HDSamplerConfig(n_samples=4, tradeoff=TradeoffSlider(1.0), seed=19)
        session = SamplingSession(tiny_interface, config)
        session.run()
        assert session.state is SessionState.COMPLETED
        session.extend_target(3)
        assert session.state is SessionState.READY
        assert session.config.n_samples == 7
        session.run()
        assert session.state is SessionState.COMPLETED
        assert len(session.output) == 7

    def test_extend_target_rejects_non_positive_counts(self, tiny_interface):
        config = HDSamplerConfig(n_samples=2, seed=20)
        session = SamplingSession(tiny_interface, config)
        with pytest.raises(ConfigurationError):
            session.extend_target(0)


class TestHDSamplerFacade:
    def test_run_produces_a_complete_result_bundle(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=8, tradeoff=TradeoffSlider(0.8), seed=7))
        result = sampler.run()
        assert result.state is SessionState.COMPLETED
        assert result.sample_count == 8
        assert result.queries_issued > 0
        assert result.queries_per_sample == pytest.approx(result.queries_issued / 8)
        assert result.history_report is not None
        summary = result.summary()
        assert summary["samples"] == 8
        assert "generator_queries_issued" in summary
        assert "history_saved" in summary

    def test_histogram_and_marginals_via_the_result(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=12, tradeoff=TradeoffSlider(0.9), seed=8))
        result = sampler.run()
        histogram = result.histogram("make")
        assert histogram.total == 12
        marginal = result.marginal_distribution("make")
        assert sum(marginal.values()) == pytest.approx(1.0)
        assert "make" in result.render_histogram("make")

    def test_aggregate_via_the_result(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=15, tradeoff=TradeoffSlider(0.9), seed=9))
        result = sampler.run()
        estimate = result.aggregate("avg", measure_attribute="price")
        assert 0.0 < estimate.value < 40_000.0

    def test_scoped_schema_is_visible_on_the_facade(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, attributes=("make", "color"), seed=10)
        sampler = HDSampler(tiny_interface, config)
        assert sampler.schema.attribute_names == ("make", "color")

    def test_history_report_absent_when_disabled(self, tiny_interface):
        config = HDSamplerConfig(n_samples=5, use_history=False, tradeoff=TradeoffSlider(1.0), seed=11)
        result = HDSampler(tiny_interface, config).run()
        assert result.history_report is None

    def test_stop_before_run_is_honoured(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=50, seed=12))
        sampler.stop()
        result = sampler.run()
        assert result.state is SessionState.STOPPED
        assert result.sample_count == 0

    def test_brute_force_algorithm_through_the_facade(self, tiny_interface):
        config = HDSamplerConfig(
            n_samples=5, algorithm=SamplerAlgorithm.BRUTE_FORCE, max_attempts=5_000, seed=13
        )
        result = HDSampler(tiny_interface, config).run()
        assert result.sample_count == 5

    def test_bindings_restrict_the_sampled_population(self, tiny_interface):
        config = HDSamplerConfig(
            n_samples=6, bindings={"make": "Toyota"}, tradeoff=TradeoffSlider(1.0), seed=14
        )
        result = HDSampler(tiny_interface, config).run()
        assert all(sample.values["make"] == "Toyota" for sample in result.samples)

    def test_queries_per_sample_with_zero_samples_is_infinite(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=3, max_attempts=1, seed=15))
        result = sampler.run()
        if result.sample_count == 0:
            assert result.queries_per_sample == float("inf")

    def test_second_run_returns_the_same_result_instead_of_re_entering(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=6, tradeoff=TradeoffSlider(1.0), seed=21))
        first = sampler.run()
        second = sampler.run()
        assert second.state is first.state
        assert second.sample_count == first.sample_count == 6
        assert second.queries_issued == first.queries_issued

    def test_facade_is_a_shim_over_the_service(self, tiny_interface):
        sampler = HDSampler(tiny_interface, HDSamplerConfig(n_samples=4, tradeoff=TradeoffSlider(1.0), seed=22))
        assert sampler.job in sampler.service.jobs
        assert sampler.session is sampler.job.session
        sampler.run()
        assert sampler.job.done


class TestProgressAndResultEdgeCases:
    """Satellite: fraction_done / queries_per_sample edge cases."""

    @staticmethod
    def _event(collected: int, requested: int) -> ProgressEvent:
        return ProgressEvent(
            samples_collected=collected,
            samples_requested=requested,
            attempts=0,
            queries_issued=0,
            state=SessionState.READY,
            last_sample=None,
        )

    @staticmethod
    def _result(sample_count: int, queries_issued: int, tiny_interface) -> SamplingResult:
        # Build a real (possibly empty) output module so sample_count is honest.
        session = SamplingSession(tiny_interface, HDSamplerConfig(n_samples=50, seed=0))
        while len(session.output) < sample_count:
            session.step()
        return SamplingResult(
            output=session.output,
            state=session.state,
            attempts=session.attempts,
            queries_issued=queries_issued,
            generator_report={},
            processor_report={},
            history_report=None,
        )

    def test_fraction_done_with_zero_requested_samples(self):
        assert self._event(0, 0).fraction_done == 1.0
        assert self._event(5, 0).fraction_done == 1.0

    def test_fraction_done_clamps_overshoot(self):
        assert self._event(7, 5).fraction_done == 1.0

    def test_fraction_done_midway(self):
        assert self._event(1, 4).fraction_done == pytest.approx(0.25)

    def test_queries_per_sample_zero_samples_with_queries_spent(self, tiny_interface):
        result = self._result(0, 12, tiny_interface)
        assert result.queries_per_sample == float("inf")

    def test_queries_per_sample_zero_samples_zero_queries(self, tiny_interface):
        result = self._result(0, 0, tiny_interface)
        assert result.queries_per_sample == 0.0

    def test_queries_per_sample_normal_case(self, tiny_interface):
        result = self._result(3, 12, tiny_interface)
        assert result.queries_per_sample == pytest.approx(4.0)

"""Unit tests for the deterministic RNG helpers in :mod:`repro._rng`."""

import random

import pytest

from repro._rng import resolve_rng, stable_hash, weighted_choice, zipf_weights


class TestWeightedChoice:
    def test_draws_proportionally(self):
        rng = random.Random(0)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert 0.70 < counts["a"] / 4000 < 0.80

    def test_zero_weight_item_is_never_drawn(self):
        rng = random.Random(1)
        drawn = {weighted_choice(rng, ["a", "b", "c"], [1.0, 0.0, 1.0]) for _ in range(500)}
        assert "b" not in drawn

    def test_negative_weight_always_raises(self):
        # Regression: a negative weight used to be detected only if the scan
        # reached it before crossing the selection threshold, so draws landing
        # on an earlier item silently accepted a corrupt weight vector.  The
        # rigged rng below forces the threshold onto the FIRST item, which the
        # old code accepted without ever seeing the bad weight.
        class FirstItemRng(random.Random):
            def random(self):
                return 0.0

        with pytest.raises(ValueError, match="non-negative"):
            weighted_choice(FirstItemRng(), ["a", "b", "c"], [5.0, -1.0, 1.0])

    def test_negative_weight_raises_for_every_seed(self):
        for seed in range(25):
            with pytest.raises(ValueError, match="non-negative"):
                weighted_choice(random.Random(seed), ["a", "b"], [10.0, -0.5])

    def test_empty_and_mismatched_inputs_raise(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])


class TestResolveRng:
    def test_int_seeds_fresh_generator(self):
        assert resolve_rng(5).random() == resolve_rng(5).random()

    def test_existing_generator_is_shared_not_forked(self):
        rng = random.Random(3)
        assert resolve_rng(rng) is rng

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            resolve_rng(True)


class TestStableHash:
    def test_is_process_independent_and_64_bit(self):
        value = stable_hash("ranking-seed")
        assert value == stable_hash("ranking-seed")
        assert 0 <= value < 2**64
        assert stable_hash("a") != stable_hash("b")


class TestZipfWeights:
    def test_zero_skew_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_weights_decay_with_rank(self):
        weights = zipf_weights(5, 1.2)
        assert weights == sorted(weights, reverse=True)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.1)

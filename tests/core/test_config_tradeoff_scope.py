"""Unit tests for HDSamplerConfig, the tradeoff slider and database scoping."""

import pytest

from repro.algorithms.acceptance_rejection import minimum_selection_probability
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.scope import ScopedDatabase
from repro.core.tradeoff import TradeoffSlider
from repro.database.query import ConjunctiveQuery
from repro.exceptions import ConfigurationError


class TestTradeoffSlider:
    def test_position_bounds(self):
        with pytest.raises(ConfigurationError):
            TradeoffSlider(-0.1)
        with pytest.raises(ConfigurationError):
            TradeoffSlider(1.1)

    def test_named_presets(self):
        assert TradeoffSlider.lowest_skew().position == 0.0
        assert TradeoffSlider.balanced().position == 0.5
        assert TradeoffSlider.highest_efficiency().position == 1.0

    def test_efficiency_and_skew_preference_are_complementary(self):
        slider = TradeoffSlider(0.3)
        assert slider.efficiency == pytest.approx(0.3)
        assert slider.skew_preference == pytest.approx(0.7)

    def test_acceptance_scale_endpoints(self, tiny_schema):
        lowest = TradeoffSlider.lowest_skew().acceptance_scale(tiny_schema, 2)
        highest = TradeoffSlider.highest_efficiency().acceptance_scale(tiny_schema, 2)
        assert lowest == pytest.approx(minimum_selection_probability(tiny_schema, 2))
        assert highest == 1.0

    def test_acceptance_scale_is_monotone_in_position(self, tiny_schema):
        scales = [TradeoffSlider(p).acceptance_scale(tiny_schema, 2) for p in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert scales == sorted(scales)

    def test_acceptance_policy_uses_the_scale(self, tiny_schema):
        policy = TradeoffSlider(0.5).acceptance_policy(tiny_schema, 2)
        assert policy.scale == pytest.approx(TradeoffSlider(0.5).acceptance_scale(tiny_schema, 2))

    def test_describe_flags_the_extremes(self):
        assert "lowest skew" in TradeoffSlider(0.0).describe()
        assert "highest efficiency" in TradeoffSlider(1.0).describe()
        assert "balanced" in TradeoffSlider(0.5).describe()


class TestHDSamplerConfig:
    def test_defaults_are_valid(self):
        config = HDSamplerConfig()
        assert config.n_samples == 100
        assert config.algorithm is SamplerAlgorithm.RANDOM_WALK
        assert config.use_history

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HDSamplerConfig(n_samples=0)
        with pytest.raises(ConfigurationError):
            HDSamplerConfig(attributes=())
        with pytest.raises(ConfigurationError):
            HDSamplerConfig(attributes=("make", "make"))
        with pytest.raises(ConfigurationError):
            HDSamplerConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            HDSamplerConfig(attributes=("make",), bindings={"make": "Toyota"})

    def test_fluent_updates_produce_new_objects(self):
        base = HDSamplerConfig()
        updated = (
            base.with_samples(50)
            .with_attributes("make", "color")
            .with_binding("condition", "used")
            .with_tradeoff(0.9)
            .with_algorithm("brute_force")
            .with_seed(7)
        )
        assert base.n_samples == 100 and updated.n_samples == 50
        assert updated.attributes == ("make", "color")
        assert updated.bindings == {"condition": "used"}
        assert updated.tradeoff.position == pytest.approx(0.9)
        assert updated.algorithm is SamplerAlgorithm.BRUTE_FORCE
        assert updated.seed == 7

    def test_without_binding(self):
        config = HDSamplerConfig(bindings={"condition": "used"}).without_binding("condition")
        assert config.bindings == {}

    def test_new_fluent_helpers_cover_the_remaining_fields(self):
        base = HDSamplerConfig()
        updated = base.with_history(False).with_deduplicate(True).with_max_attempts(500)
        assert base.use_history and not updated.use_history
        assert not base.deduplicate and updated.deduplicate
        assert base.max_attempts is None and updated.max_attempts == 500
        # The helpers accept reverting too.
        reverted = updated.with_history().with_deduplicate(False).with_max_attempts(None)
        assert reverted == base

    def test_fluent_updates_still_validate(self):
        with pytest.raises(ConfigurationError):
            HDSamplerConfig().with_max_attempts(-1)
        with pytest.raises(ConfigurationError):
            HDSamplerConfig().with_samples(0)

    def test_to_dict_from_dict_round_trip(self):
        config = HDSamplerConfig(
            n_samples=42,
            attributes=("make", "color"),
            bindings={"condition": "used"},
            tradeoff=TradeoffSlider(0.8),
            algorithm=SamplerAlgorithm.COUNT_AIDED,
            use_history=False,
            max_attempts=999,
            deduplicate=True,
            seed=5,
        )
        assert HDSamplerConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_serialisable(self):
        import json

        payload = json.dumps(HDSamplerConfig(attributes=("make",)).to_dict())
        assert HDSamplerConfig.from_dict(json.loads(payload)).attributes == ("make",)

    def test_describe_lists_the_settings(self):
        text = HDSamplerConfig(attributes=("make",), bindings={"color": "red"}).describe()
        assert "make" in text and "color='red'" in text


class TestScopedDatabase:
    def test_attribute_selection_projects_the_schema(self, tiny_interface):
        scoped = ScopedDatabase(tiny_interface, attributes=("make", "color"))
        assert scoped.schema.attribute_names == ("make", "color")
        assert scoped.k == tiny_interface.k

    def test_bindings_are_merged_into_every_query(self, tiny_interface):
        scoped = ScopedDatabase(tiny_interface, bindings={"make": "Toyota"})
        assert "make" not in scoped.schema
        response = scoped.submit(ConjunctiveQuery.empty(scoped.schema))
        # Only the 4 Toyotas qualify, so the reported (exact) count is 4.
        assert response.reported_count == 4
        # The response's query stays in the scoped schema's terms.
        assert response.query.schema == scoped.schema

    def test_binding_and_selection_compose(self, tiny_interface):
        scoped = ScopedDatabase(tiny_interface, attributes=("color",), bindings={"make": "Honda"})
        response = scoped.submit(ConjunctiveQuery.from_assignment(scoped.schema, {"color": "red"}))
        assert response.reported_count == 1

    def test_invalid_binding_value_is_rejected(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            ScopedDatabase(tiny_interface, bindings={"make": "Tesla"})

    def test_bound_attribute_cannot_also_be_selected(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            ScopedDatabase(tiny_interface, attributes=("make",), bindings={"make": "Toyota"})

    def test_everything_bound_is_rejected(self, tiny_interface):
        with pytest.raises(ConfigurationError):
            ScopedDatabase(
                tiny_interface,
                bindings={"make": "Toyota", "color": "red", "price": "0-10000"},
            )

    def test_inner_exposes_the_wrapped_database(self, tiny_interface):
        scoped = ScopedDatabase(tiny_interface)
        assert scoped.inner is tiny_interface
        assert scoped.bindings == {}

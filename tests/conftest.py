"""Shared fixtures: small hidden databases with known ground truth."""

from __future__ import annotations

import pytest

from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.ranking import RowIdRanking, StaticScoreRanking
from repro.database.schema import Attribute, Domain, Schema
from repro.database.table import Table
from repro.datasets.boolean import BooleanConfig, figure1_table, generate_boolean_table
from repro.datasets.vehicles import VehiclesConfig, generate_vehicles_table


@pytest.fixture()
def tiny_schema() -> Schema:
    """A 3-attribute mixed schema small enough to enumerate by hand."""
    return Schema(
        [
            Attribute("make", Domain.categorical(("Toyota", "Honda", "Ford"))),
            Attribute("color", Domain.categorical(("red", "blue"))),
            Attribute("price", Domain.numeric_buckets((0.0, 10_000.0, 20_000.0, 40_000.0))),
        ],
        name="tiny",
    )


@pytest.fixture()
def tiny_table(tiny_schema: Schema) -> Table:
    """Eight rows over the tiny schema with easy-to-check marginals."""
    rows = [
        {"make": "Toyota", "color": "red", "price": 5_000.0, "score": 10.0},
        {"make": "Toyota", "color": "blue", "price": 15_000.0, "score": 9.0},
        {"make": "Toyota", "color": "red", "price": 25_000.0, "score": 8.0},
        {"make": "Toyota", "color": "blue", "price": 5_000.0, "score": 7.0},
        {"make": "Honda", "color": "red", "price": 15_000.0, "score": 6.0},
        {"make": "Honda", "color": "blue", "price": 25_000.0, "score": 5.0},
        {"make": "Ford", "color": "red", "price": 5_000.0, "score": 4.0},
        {"make": "Ford", "color": "blue", "price": 35_000.0, "score": 3.0},
    ]
    return Table(tiny_schema, rows, name="tiny")


@pytest.fixture()
def tiny_interface(tiny_table: Table) -> HiddenDatabaseInterface:
    """Interface over the tiny table with k=2 so overflow happens readily."""
    return HiddenDatabaseInterface(
        tiny_table, k=2, ranking=StaticScoreRanking(), count_mode=CountMode.EXACT, seed=0
    )


@pytest.fixture()
def figure1() -> Table:
    """The exact boolean database of the paper's Figure 1."""
    return figure1_table()


@pytest.fixture()
def figure1_interface(figure1: Table) -> HiddenDatabaseInterface:
    """Figure 1 behind a k=1 interface (the setting of the SIGMOD'07 analysis)."""
    return HiddenDatabaseInterface(figure1, k=1, ranking=RowIdRanking(), seed=0)


@pytest.fixture(scope="session")
def boolean_table() -> Table:
    """A medium boolean database reused by sampler statistics tests."""
    return generate_boolean_table(BooleanConfig(n_rows=400, n_attributes=6, seed=7))


@pytest.fixture(scope="session")
def small_vehicles_table() -> Table:
    """A small vehicle catalogue reused across integration tests."""
    return generate_vehicles_table(VehiclesConfig(n_rows=1_500, seed=11))

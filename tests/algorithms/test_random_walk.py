"""Unit tests for the HIDDEN-DB-SAMPLER random walk."""

import pytest

from repro.algorithms.acceptance_rejection import AcceptAllPolicy, UniformAcceptancePolicy
from repro.algorithms.ordering import FixedOrdering
from repro.algorithms.random_walk import RandomWalkConfig, RandomWalkSampler
from repro.database.interface import HiddenDatabaseInterface
from repro.database.limits import QueryBudget
from repro.datasets.boolean import BooleanConfig, generate_boolean_table
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_efficiency_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError):
            RandomWalkConfig(efficiency=1.5)

    def test_max_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RandomWalkConfig(max_depth=0)


class TestWalkMechanics:
    def test_candidate_from_figure1(self, figure1_interface):
        sampler = RandomWalkSampler(
            figure1_interface,
            config=RandomWalkConfig(efficiency=1.0),
            ordering=FixedOrdering(),
            seed=1,
        )
        candidates = []
        for _ in range(50):
            candidate = sampler.draw_candidate()
            if candidate is not None:
                candidates.append(candidate)
        assert candidates, "at least one walk must succeed on Figure 1"
        for candidate in candidates:
            assert 0 < candidate.selection_probability <= 0.5
            assert candidate.trace.queries_issued >= 1
            assert candidate.source == "hidden-db-sampler"

    def test_walk_selection_probability_reflects_depth_and_page_size(self, figure1_interface):
        sampler = RandomWalkSampler(figure1_interface, ordering=FixedOrdering(), seed=7)
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        depth = len(candidate.trace.steps[-1].query)
        returned = candidate.trace.steps[-1].returned_count
        assert candidate.selection_probability == pytest.approx((0.5 ** depth) / returned)

    def test_failed_walks_are_counted(self, tiny_interface):
        # The tiny table has empty leaf combinations (e.g. a cheap Honda), so
        # random drill-downs dead-end from time to time.
        sampler = RandomWalkSampler(tiny_interface, seed=3)
        for _ in range(100):
            sampler.draw_candidate()
        assert sampler.report.failed_walks > 0
        assert sampler.report.queries_issued > 0

    def test_probe_root_issues_the_unrestricted_query_first(self, tiny_interface):
        sampler = RandomWalkSampler(
            tiny_interface, config=RandomWalkConfig(probe_root=True), seed=0
        )
        candidate = None
        for _ in range(50):
            candidate = sampler.draw_candidate()
            if candidate is not None:
                break
        assert candidate is not None
        assert len(candidate.trace.steps[0].query) == 0

    def test_max_depth_limits_the_walk(self, tiny_interface):
        sampler = RandomWalkSampler(
            tiny_interface, config=RandomWalkConfig(max_depth=1), seed=0
        )
        for _ in range(20):
            candidate = sampler.draw_candidate()
            if candidate is not None:
                assert len(candidate.trace.steps[-1].query) <= 1

    def test_draw_samples_respects_max_attempts(self, figure1_interface):
        sampler = RandomWalkSampler(figure1_interface, seed=5)
        samples = sampler.draw_samples(1_000, max_attempts=10)
        assert len(samples) <= 10

    def test_draw_samples_stops_when_budget_exhausted(self, figure1):
        interface = HiddenDatabaseInterface(figure1, k=1, budget=QueryBudget(limit=10))
        sampler = RandomWalkSampler(interface, seed=2)
        samples = sampler.draw_samples(1_000)
        assert interface.budget.issued <= 10
        assert len(samples) < 1_000

    def test_acceptance_policy_is_delegated(self, figure1_interface):
        sampler = RandomWalkSampler(
            figure1_interface, acceptance_policy=AcceptAllPolicy(), seed=1
        )
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        assert sampler.acceptance_probability(candidate) == 1.0

    def test_iter_samples_yields_incrementally(self, figure1_interface):
        sampler = RandomWalkSampler(
            figure1_interface, config=RandomWalkConfig(efficiency=1.0), seed=9
        )
        iterator = sampler.iter_samples(max_attempts=200)
        first = next(iterator)
        assert first.tuple_id in {0, 1, 2, 3}


class TestCoverageAndUniformity:
    def test_every_tuple_is_reachable_on_figure1(self, figure1_interface):
        """All four tuples of Figure 1 must eventually appear in the samples."""
        sampler = RandomWalkSampler(
            figure1_interface,
            config=RandomWalkConfig(efficiency=1.0),
            seed=11,
        )
        seen = set()
        for sample in sampler.iter_samples(max_attempts=3_000):
            seen.add(sample.tuple_id)
            if len(seen) == 4:
                break
        assert seen == {0, 1, 2, 3}

    def test_uniform_policy_reduces_skew_versus_accept_all(self):
        """With the uniform acceptance policy, sample frequencies of a skewed
        boolean database track the true marginal more closely than with
        accept-everything (the core claim of acceptance-rejection)."""
        table = generate_boolean_table(
            BooleanConfig(n_rows=300, n_attributes=4, distribution="zipf",
                          probability=0.7, skew=1.2, seed=13)
        )
        interface_fast = HiddenDatabaseInterface(table, k=5, seed=0)
        interface_uniform = HiddenDatabaseInterface(table, k=5, seed=0)
        true_fraction = sum(1 for row in table if row["a1"]) / len(table)

        fast = RandomWalkSampler(
            interface_fast, acceptance_policy=AcceptAllPolicy(), seed=21
        ).draw_samples(400, max_attempts=100_000)
        uniform = RandomWalkSampler(
            interface_uniform,
            acceptance_policy=UniformAcceptancePolicy(table.schema, 5),
            seed=21,
        ).draw_samples(400, max_attempts=100_000)

        assert len(fast) == 400 and len(uniform) == 400
        fast_fraction = sum(1 for s in fast if s.selectable_values["a1"]) / len(fast)
        uniform_fraction = sum(1 for s in uniform if s.selectable_values["a1"]) / len(uniform)
        assert abs(uniform_fraction - true_fraction) <= abs(fast_fraction - true_fraction) + 0.02

"""Unit tests for BRUTE-FORCE-SAMPLER and the count-aided sampler."""

import collections

import pytest

from repro.algorithms.brute_force import BruteForceSampler
from repro.algorithms.count_based import CountAidedSampler
from repro.algorithms.ordering import FixedOrdering
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.datasets.categorical import CategoricalConfig, generate_categorical_table
from repro.exceptions import SamplingError


class TestBruteForce:
    def test_selection_probability_is_uniform_over_leaves(self, figure1_interface):
        sampler = BruteForceSampler(figure1_interface, seed=0)
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        # 8 leaves, distinct tuples, k = 1 -> every candidate has probability 1/8.
        assert candidate.selection_probability == pytest.approx(1.0 / 8.0)

    def test_acceptance_probability_scales_with_page_size(self, tiny_interface):
        sampler = BruteForceSampler(tiny_interface, seed=1)
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        returned = candidate.trace.steps[-1].returned_count
        assert sampler.acceptance_probability(candidate) == pytest.approx(returned / 2.0)

    def test_every_attempt_costs_exactly_one_query(self, figure1_interface):
        sampler = BruteForceSampler(figure1_interface, seed=2)
        before = sampler.report.queries_issued
        sampler.draw_candidate()
        assert sampler.report.queries_issued == before + 1

    def test_sampling_figure1_is_close_to_uniform(self, figure1):
        """Long-run frequencies over the 4 tuples should be roughly equal."""
        interface = HiddenDatabaseInterface(figure1, k=1, seed=0)
        sampler = BruteForceSampler(interface, seed=3)
        samples = sampler.draw_samples(400, max_attempts=50_000)
        counts = collections.Counter(sample.tuple_id for sample in samples)
        assert set(counts) == {0, 1, 2, 3}
        frequencies = [counts[i] / len(samples) for i in range(4)]
        assert max(frequencies) - min(frequencies) < 0.12

    def test_failed_probes_are_recorded(self, figure1_interface):
        sampler = BruteForceSampler(figure1_interface, seed=4)
        for _ in range(40):
            sampler.draw_candidate()
        # Figure 1 has 4 tuples over 8 leaves, so about half the probes fail.
        assert sampler.report.failed_walks > 0


class TestCountAided:
    @pytest.fixture()
    def skewed_interface(self):
        # k is large enough that fully-specified queries never overflow, which
        # is the regime where count-aided drill-down is exactly uniform.
        table = generate_categorical_table(
            CategoricalConfig(n_rows=600, cardinalities=(5, 4, 3), skew=1.0, seed=5)
        )
        return table, HiddenDatabaseInterface(table, k=100, count_mode=CountMode.EXACT, seed=0)

    def test_exact_counts_give_exactly_uniform_selection_probabilities(self, skewed_interface):
        table, interface = skewed_interface
        sampler = CountAidedSampler(interface, seed=1)
        samples = sampler.draw_samples(25)
        assert len(samples) == 25
        for sample in samples:
            assert sample.selection_probability == pytest.approx(1.0 / len(table), rel=1e-9)
            assert sample.acceptance_probability == 1.0

    def test_estimated_total_matches_table_size_with_exact_counts(self, skewed_interface):
        table, interface = skewed_interface
        sampler = CountAidedSampler(interface, seed=2)
        sampler.draw_samples(5)
        assert sampler.estimated_total == pytest.approx(len(table))

    def test_queries_per_walk_equals_sum_of_domain_sizes_along_the_path(self, skewed_interface):
        _, interface = skewed_interface
        sampler = CountAidedSampler(interface, ordering=FixedOrdering(), seed=3)
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        # The walk queried every child at each level it visited: the per-level
        # domain sizes are 5, 4, 3 in fixed order.
        levels = len({len(step.query) for step in candidate.trace.steps})
        expected = sum((5, 4, 3)[:levels])
        assert candidate.trace.queries_issued >= expected

    def test_rejection_option_is_noop_with_exact_counts(self, skewed_interface):
        _, interface = skewed_interface
        sampler = CountAidedSampler(interface, use_rejection=True, seed=4)
        candidate = None
        while candidate is None:
            candidate = sampler.draw_candidate()
        assert sampler.acceptance_probability(candidate) == pytest.approx(1.0)

    def test_count_free_interface_is_rejected(self, tiny_table):
        interface = HiddenDatabaseInterface(tiny_table, k=2, count_mode=CountMode.NONE)
        sampler = CountAidedSampler(interface, seed=5)
        with pytest.raises(SamplingError):
            sampler.draw_candidate()

    def test_noisy_counts_still_produce_samples(self, tiny_table):
        interface = HiddenDatabaseInterface(
            tiny_table, k=2, count_mode=CountMode.NOISY, count_noise=0.4, seed=6
        )
        sampler = CountAidedSampler(interface, use_rejection=True, seed=7)
        samples = sampler.draw_samples(10, max_attempts=500)
        assert samples
        # With noise the selection probabilities are only approximately 1/N.
        for sample in samples:
            assert 0.0 < sample.selection_probability < 1.0

    def test_marginals_track_ground_truth(self, skewed_interface):
        table, interface = skewed_interface
        sampler = CountAidedSampler(interface, seed=8)
        samples = sampler.draw_samples(300)
        counts = collections.Counter(s.selectable_values["c1"] for s in samples)
        truth = table.value_counts("c1")
        top_true = max(truth, key=truth.get)
        assert counts[top_true] == max(counts.values())

"""Unit tests for acceptance–rejection policies and attribute orderings."""

import math
import random

import pytest

from repro.algorithms.acceptance_rejection import (
    AcceptAllPolicy,
    ScaledAcceptancePolicy,
    UniformAcceptancePolicy,
    expected_acceptance_rate,
    maximum_selection_probability,
    minimum_selection_probability,
    scale_for_tradeoff,
)
from repro.algorithms.base import Candidate, WalkTrace
from repro.algorithms.ordering import CardinalityAwareOrdering, FixedOrdering, RandomOrdering
from repro.exceptions import ConfigurationError


def _candidate(probability: float) -> Candidate:
    return Candidate(
        tuple_id=0,
        values={},
        selectable_values={},
        selection_probability=probability,
        trace=WalkTrace(steps=(), attribute_order=()),
        source="test",
    )


class TestPolicies:
    def test_accept_all_policy(self):
        assert AcceptAllPolicy().acceptance_probability(_candidate(0.001)) == 1.0

    def test_scaled_policy_is_min_of_one_and_ratio(self):
        policy = ScaledAcceptancePolicy(scale=0.01)
        assert policy.acceptance_probability(_candidate(0.1)) == pytest.approx(0.1)
        assert policy.acceptance_probability(_candidate(0.005)) == 1.0

    def test_scaled_policy_handles_zero_probability_defensively(self):
        assert ScaledAcceptancePolicy(0.1).acceptance_probability(_candidate(0.0)) == 1.0

    def test_scaled_policy_requires_positive_scale(self):
        with pytest.raises(ConfigurationError):
            ScaledAcceptancePolicy(0.0)

    def test_uniform_policy_never_caps(self, tiny_schema):
        policy = UniformAcceptancePolicy(tiny_schema, k=2)
        floor = minimum_selection_probability(tiny_schema, 2)
        # Any achievable probability is >= the floor, so the ratio is <= 1.
        assert policy.acceptance_probability(_candidate(floor)) == pytest.approx(1.0)
        assert policy.acceptance_probability(_candidate(floor * 4)) == pytest.approx(0.25)

    def test_policy_names(self, tiny_schema):
        assert "ScaledAcceptancePolicy" in ScaledAcceptancePolicy(0.1).name


class TestScaleMaths:
    def test_minimum_selection_probability(self, tiny_schema):
        # domains 3 * 2 * 3 = 18 leaves, k = 2 -> 1 / 36
        assert minimum_selection_probability(tiny_schema, 2) == pytest.approx(1.0 / 36.0)
        with pytest.raises(ConfigurationError):
            minimum_selection_probability(tiny_schema, 0)

    def test_maximum_selection_probability(self, tiny_schema):
        assert maximum_selection_probability(tiny_schema) == pytest.approx(0.5)

    def test_scale_for_tradeoff_endpoints_and_monotonicity(self, tiny_schema):
        low = scale_for_tradeoff(tiny_schema, 2, 0.0)
        mid = scale_for_tradeoff(tiny_schema, 2, 0.5)
        high = scale_for_tradeoff(tiny_schema, 2, 1.0)
        assert low == pytest.approx(minimum_selection_probability(tiny_schema, 2))
        assert high == 1.0
        assert low < mid < high
        # Log-linear: the midpoint is the geometric mean of the endpoints.
        assert mid == pytest.approx(math.sqrt(low * high))

    def test_scale_for_tradeoff_validates_position(self, tiny_schema):
        with pytest.raises(ConfigurationError):
            scale_for_tradeoff(tiny_schema, 2, 1.5)

    def test_expected_acceptance_rate(self):
        assert expected_acceptance_rate(0.1, []) == 0.0
        rate = expected_acceptance_rate(0.05, [0.1, 0.05, 0.01])
        assert rate == pytest.approx((0.5 + 1.0 + 1.0) / 3)


class TestOrderings:
    def test_fixed_ordering_defaults_to_schema_order(self, tiny_schema):
        ordering = FixedOrdering()
        assert ordering.order_for_walk(tiny_schema, random.Random(0)) == tiny_schema.attribute_names

    def test_fixed_ordering_accepts_explicit_permutation(self, tiny_schema):
        ordering = FixedOrdering(("price", "make", "color"))
        assert ordering.order_for_walk(tiny_schema, random.Random(0)) == ("price", "make", "color")

    def test_fixed_ordering_rejects_non_permutations(self, tiny_schema):
        with pytest.raises(ConfigurationError):
            FixedOrdering(("make",)).order_for_walk(tiny_schema, random.Random(0))

    def test_random_ordering_is_a_permutation_and_varies(self, tiny_schema):
        ordering = RandomOrdering()
        rng = random.Random(0)
        orders = {ordering.order_for_walk(tiny_schema, rng) for _ in range(30)}
        assert all(set(order) == set(tiny_schema.attribute_names) for order in orders)
        assert len(orders) > 1

    def test_cardinality_aware_ordering_sorts_by_domain_size(self, tiny_schema):
        ordering = CardinalityAwareOrdering()
        order = ordering.order_for_walk(tiny_schema, random.Random(0))
        cardinalities = [tiny_schema.attribute(name).cardinality for name in order]
        assert cardinalities == sorted(cardinalities)
        descending = CardinalityAwareOrdering(ascending=False)
        order_desc = descending.order_for_walk(tiny_schema, random.Random(0))
        assert [tiny_schema.attribute(n).cardinality for n in order_desc] == sorted(cardinalities, reverse=True)

"""Each reprolint rule against its good/bad fixture pair.

Every rule has one fixture that violates it (flagged with the right rule id)
and one that honours the same invariant (clean).  Path-sensitive rules (R3's
typed-boundary half, R6's stack-module scoping) are driven by constructing
the :class:`ModuleSource` with an explicit ``display_path``.
"""

from pathlib import Path

import pytest

from repro.analysis.engine import ModuleSource, Rule, load_module, run_analysis
from repro.analysis.rules import all_rules
from repro.analysis.rules.deterministic_rng import DeterministicRngRule
from repro.analysis.rules.exception_taxonomy import ExceptionTaxonomyRule
from repro.analysis.rules.guarded_state import GuardedStateRule
from repro.analysis.rules.layer_contract import LayerContractRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.stack_composition import StackCompositionRule

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_module(name: str, display_path: str | None = None) -> ModuleSource:
    path = FIXTURES / f"{name}.py"
    return load_module(path, display_path or str(path))


def run_rule(rule: Rule, module: ModuleSource) -> list:
    findings = [f for f in rule.check_module(module) if not module.is_suppressed(f)]
    findings.extend(f for f in rule.finish() if not module.is_suppressed(f))
    return findings


PAIRS = [
    pytest.param(GuardedStateRule, "r1", None, id="R1-guarded-state"),
    pytest.param(LayerContractRule, "r2", None, id="R2-layer-contract"),
    pytest.param(ExceptionTaxonomyRule, "r3", None, id="R3-exception-taxonomy"),
    pytest.param(DeterministicRngRule, "r4", None, id="R4-deterministic-rng"),
    pytest.param(LockOrderRule, "r5", None, id="R5-lock-order"),
    pytest.param(StackCompositionRule, "r6", "repro/backends/stack.py", id="R6-stack-composition"),
    pytest.param(
        StackCompositionRule, "r6_recipes", "repro/scenarios/recipes.py",
        id="R6-scenario-recipes",
    ),
]


class TestFixturePairs:
    @pytest.mark.parametrize("rule_class, stem, display", PAIRS)
    def test_bad_fixture_is_flagged_with_its_rule_id(self, rule_class, stem, display):
        rule = rule_class()
        module = fixture_module(f"{stem}_bad", display)
        findings = run_rule(rule, module)
        assert findings, f"{stem}_bad should violate {rule.rule_id}"
        assert {f.rule for f in findings} == {rule.rule_id}

    @pytest.mark.parametrize("rule_class, stem, display", PAIRS)
    def test_good_fixture_is_clean(self, rule_class, stem, display):
        rule = rule_class()
        module = fixture_module(f"{stem}_good", display)
        assert run_rule(rule, module) == []


class TestRuleSpecifics:
    def test_r1_flags_every_guarded_attribute(self):
        findings = run_rule(GuardedStateRule(), fixture_module("r1_bad"))
        messages = " ".join(f.message for f in findings)
        assert "self.count" in messages
        assert "self.events" in messages

    def test_r2_names_the_missing_half(self):
        (finding,) = run_rule(LayerContractRule(), fixture_module("r2_bad"))
        assert "LopsidedLayer" in finding.message
        assert "submit_outcomes" in finding.message

    def test_r3_typed_boundary_is_path_sensitive(self):
        # Outside the boundary packages only the swallowing broad except is
        # flagged; presented as a backends module, the untyped ``ValueError``
        # raise is flagged too.
        outside = run_rule(ExceptionTaxonomyRule(), fixture_module("r3_bad"))
        assert len(outside) == 1
        inside = run_rule(
            ExceptionTaxonomyRule(),
            fixture_module("r3_bad", display_path="repro/backends/r3_bad.py"),
        )
        assert len(inside) == 2
        assert any("ValueError" in f.message for f in inside)

    def test_r4_flags_calls_imports_and_clock_seeding(self):
        findings = run_rule(DeterministicRngRule(), fixture_module("r4_bad"))
        messages = " ".join(f.message for f in findings)
        assert "random.choice" in messages or "choice" in messages
        assert "time" in messages  # the clock-seeding finding

    def test_r5_reports_the_cycle_chain(self):
        (finding,) = run_rule(LockOrderRule(), fixture_module("r5_bad"))
        assert "Ledger._lock" in finding.message
        assert "Ledger._stats_lock" in finding.message

    def test_r6_only_applies_to_stack_modules(self):
        # The same out-of-order builder is ignored under its real (non-stack)
        # fixture path: layer definitions may mention names in any order.
        assert run_rule(StackCompositionRule(), fixture_module("r6_bad")) == []

    def test_r6_checks_scenario_recipe_modules(self):
        # The scenario harness composes chaos stacks in ``recipes.py``;
        # those recipes are held to the same layer-order contract as the
        # canonical builders, under any package path...
        findings = run_rule(
            StackCompositionRule(),
            fixture_module("r6_recipes_bad", display_path="repro/scenarios/recipes.py"),
        )
        assert any("breaker_above_retry_recipe" in f.message for f in findings)
        assert any("stats_under_storm_recipe" in f.message for f in findings)
        # ...while the same source under a non-composition path is ignored.
        assert run_rule(StackCompositionRule(), fixture_module("r6_recipes_bad")) == []

    def test_r6_holds_async_builders_to_the_same_order(self):
        # ``async_remote_stack`` made builders async-adjacent; the ordering
        # contract must not depend on whether the builder is a coroutine.
        findings = run_rule(
            StackCompositionRule(),
            fixture_module("r6_bad", display_path="repro/backends/stack.py"),
        )
        assert any("build_async_stack" in f.message for f in findings)


class TestEngineBehaviour:
    def test_inline_suppression_silences_a_finding(self, tmp_path):
        source = (FIXTURES / "r1_bad.py").read_text(encoding="utf-8")
        suppressed = source.replace(
            "self.count += amount",
            "self.count += amount  # reprolint: disable=R1 -- fixture",
        ).replace(
            "self.events.append(amount)",
            "self.events.append(amount)  # reprolint: disable=all",
        )
        target = tmp_path / "suppressed.py"
        target.write_text(suppressed, encoding="utf-8")
        assert run_analysis([target], rules=[GuardedStateRule()]) == []

    def test_unparsable_file_is_a_finding_not_a_crash(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        (finding,) = run_analysis([target])
        assert finding.rule == "E0"
        assert "does not parse" in finding.message

    def test_rule_ids_are_unique_and_complete(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert ids == ["R1", "R2", "R3", "R4", "R5", "R6"]
        for rule in rules:
            assert rule.name
            assert rule.rationale

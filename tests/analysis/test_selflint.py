"""The tree lints itself clean — and the rules still have teeth.

The first test is the gate the CI ``lint`` job enforces: zero findings over
``src/repro``.  The rest are red tests: take a real source file, break one
invariant mechanically (strip a ``with`` lock block, delete a batch method),
and check the relevant rule catches exactly that regression.  This guards
against the failure mode where a refactor quietly turns a rule into a no-op
and the "clean" gate stops meaning anything.
"""

import ast
from pathlib import Path

from repro.analysis.engine import run_analysis
from repro.analysis.rules.guarded_state import GuardedStateRule
from repro.analysis.rules.layer_contract import LayerContractRule

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"
LAYERS = SRC_REPRO / "backends" / "layers.py"


def test_the_tree_is_clean():
    assert run_analysis([SRC_REPRO]) == []


class _StripWith(ast.NodeTransformer):
    """Replace every ``with`` statement in one method with its bare body."""

    def __init__(self, class_name: str, method_name: str):
        self.class_name = class_name
        self.method_name = method_name
        self._inside = False
        self.stripped = 0

    def visit_ClassDef(self, node: ast.ClassDef):
        if node.name != self.class_name:
            return node
        self.generic_visit(node)
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        if node.name != self.method_name:
            return node
        self._inside = True
        self.generic_visit(node)
        self._inside = False
        return node

    def visit_With(self, node: ast.With):
        if not self._inside:
            return node
        self.stripped += 1
        body = [self.visit(statement) for statement in node.body]
        return body


class _DropMethod(ast.NodeTransformer):
    def __init__(self, class_name: str, method_name: str):
        self.class_name = class_name
        self.method_name = method_name
        self.dropped = 0

    def visit_ClassDef(self, node: ast.ClassDef):
        if node.name != self.class_name:
            return node
        kept = []
        for statement in node.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == self.method_name:
                self.dropped += 1
                continue
            kept.append(statement)
        node.body = kept
        return node


def _mutate(tmp_path, transformer: ast.NodeTransformer) -> Path:
    tree = ast.parse(LAYERS.read_text(encoding="utf-8"))
    mutated = ast.fix_missing_locations(transformer.visit(tree))
    target = tmp_path / "layers.py"
    target.write_text(ast.unparse(mutated), encoding="utf-8")
    return target


class TestMutationsStayRed:
    def test_unlocking_a_guarded_write_trips_r1(self, tmp_path):
        transformer = _StripWith("StatisticsLayer", "reset")
        target = _mutate(tmp_path, transformer)
        assert transformer.stripped >= 1, "fixture drift: reset no longer uses a with block"
        findings = run_analysis([target], rules=[GuardedStateRule()])
        assert findings
        assert all(f.rule == "R1" for f in findings)
        assert any(
            "self.statistics" in f.message and "StatisticsLayer.reset" in f.message
            for f in findings
        )

    def test_deleting_a_batch_method_trips_r2(self, tmp_path):
        transformer = _DropMethod("BudgetLayer", "submit_many")
        target = _mutate(tmp_path, transformer)
        assert transformer.dropped == 1, "fixture drift: BudgetLayer.submit_many not found"
        findings = run_analysis([target], rules=[LayerContractRule()])
        assert findings
        assert all(f.rule == "R2" for f in findings)
        assert any("BudgetLayer" in f.message for f in findings)

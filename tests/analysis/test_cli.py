"""The ``python -m repro.analysis`` command line, driven in-process."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "r1_good.py")]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 findings" in captured.err

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "r1_bad.py")]) == 1
        captured = capsys.readouterr()
        assert "R1" in captured.out
        assert "findings" in captured.err

    def test_missing_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "does_not_exist.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_repo_source_tree_is_clean(self, capsys):
        # The same gate CI runs: the shipped tree lints clean.
        assert main([str(SRC_REPRO)]) == 0


class TestFormats:
    def test_text_format_renders_path_line_rule(self, capsys):
        main([str(FIXTURES / "r1_bad.py"), "--format", "text"])
        out = capsys.readouterr().out
        assert "r1_bad.py:" in out
        assert ": R1 " in out

    def test_json_format_is_machine_readable(self, capsys):
        main([str(FIXTURES / "r1_bad.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["count"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}
        assert first["rule"] == "R1"

    def test_json_format_clean_run_reports_zero(self, capsys):
        assert main([str(FIXTURES / "r1_good.py"), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"tool": "reprolint", "findings": [], "count": 0}

    def test_github_format_emits_error_annotations(self, capsys):
        main([str(FIXTURES / "r1_bad.py"), "--format", "github"])
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            assert line.startswith("::error file=")
            assert "title=reprolint R1::" in line


class TestRuleSelection:
    def test_rules_flag_restricts_the_run(self, capsys):
        # r1_bad violates R1 only; running just R2 over it is clean.
        assert main([str(FIXTURES / "r1_bad.py"), "--rules", "R2"]) == 0
        assert main([str(FIXTURES / "r1_bad.py"), "--rules", "R2,R1"]) == 1

    def test_unknown_rule_id_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "r1_bad.py"), "--rules", "R9"])

    def test_list_rules_names_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in out

"""R6 fixture: scenario recipe mentions layers out of canonical order.

Only meaningful when presented under a ``recipes.py`` display path; the
tests arrange that when constructing the :class:`ModuleSource`.
"""


def breaker_above_retry_recipe(raw):
    # The breaker must sit *below* the retry layer: each retry attempt is a
    # real call its failure window should see.  This recipe inverts that.
    layer = UnreliableLayer(raw)
    return CircuitBreakerLayer(layer)


def stats_under_storm_recipe(raw, budget):
    layer = StatisticsLayer(raw)
    return BudgetLayer(layer, budget=budget)

"""R2 fixture: a layer overriding submission defines both batch halves."""


class BackendLayer:
    def submit(self, query):
        raise NotImplementedError

    def submit_many(self, queries):
        raise NotImplementedError

    def submit_outcomes(self, queries):
        raise NotImplementedError


class CountingLayer(BackendLayer):
    def submit(self, query):
        return query

    def submit_many(self, queries):
        return list(queries)

    def submit_outcomes(self, queries):
        return [(query, None) for query in queries]


class PassthroughLayer(BackendLayer):
    """Overrides nothing submission-related: nothing required of it."""

    def describe(self):
        return "passthrough"

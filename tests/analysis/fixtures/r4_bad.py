"""R4 fixture: module-level random calls and clock seeding."""

import random
import time

from random import choice

from repro._rng import resolve_rng


def pick(values):
    return random.choice(list(values))


def clock_seeded_rng():
    return resolve_rng(random.Random(time.time()))

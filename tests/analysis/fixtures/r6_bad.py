"""R6 fixture: builder mentions layers out of canonical order.

Only meaningful when presented under a ``stack.py`` display path; the tests
arrange that when constructing the :class:`ModuleSource`.
"""


def build_stack(inner, budget):
    layer = StatisticsLayer(inner)
    layer = BudgetLayer(layer, budget=budget)
    return HistoryLayer(layer)


async def build_async_stack(inner, budget):
    # Async builders are held to the same ordering contract: retries above
    # the budget double-charge it no matter which transport runs below.
    layer = BudgetLayer(inner, budget=budget)
    layer = UnreliableLayer(layer)
    return StatisticsLayer(layer)

"""R4 fixture: randomness flows through the seeded-RNG plumbing."""

from random import Random

from repro._rng import resolve_rng


def pick(values, rng=None):
    resolved = resolve_rng(rng)
    return resolved.choice(list(values))


def shuffled(values, rng: Random):
    items = list(values)
    rng.shuffle(items)
    return items

"""R6 fixture: builder wires layers innermost-first (canonical order).

Only meaningful when presented under a ``stack.py`` display path; the tests
arrange that when constructing the :class:`ModuleSource`.
"""


def build_stack(inner, budget, seed):
    layer = CountModeLayer(inner)
    layer = CircuitBreakerLayer(layer)
    layer = UnreliableLayer(layer, seed=seed)
    layer = BudgetLayer(layer, budget=budget)
    layer = StatisticsLayer(layer)
    layer = HistoryLayer(layer)
    return DispatchLayer(layer)


async def build_async_stack(inner, budget):
    layer = CircuitBreakerLayer(inner)
    layer = UnreliableLayer(layer)
    layer = BudgetLayer(layer, budget=budget)
    layer = StatisticsLayer(layer)
    return DispatchLayer(layer)

"""R5 fixture: the same two locks nested in opposite orders — a cycle."""

import threading


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.entries = []
        self.totals = 0

    def record(self, entry):
        with self._lock:
            self.entries.append(entry)
            with self._stats_lock:
                self.totals += 1

    def summarise(self):
        with self._stats_lock:
            with self._lock:
                return (len(self.entries), self.totals)

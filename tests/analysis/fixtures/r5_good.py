"""R5 fixture: two locks, always nested in the same order."""

import threading


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.entries = []
        self.totals = 0

    def record(self, entry):
        with self._lock:
            self.entries.append(entry)
            with self._stats_lock:
                self.totals += 1

    def merge(self, other_entries):
        with self._lock:
            self.entries.extend(other_entries)
            with self._stats_lock:
                self.totals += len(other_entries)

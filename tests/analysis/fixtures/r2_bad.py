"""R2 fixture: a layer overrides submit_many without submit_outcomes."""


class BackendLayer:
    def submit(self, query):
        raise NotImplementedError

    def submit_many(self, queries):
        raise NotImplementedError

    def submit_outcomes(self, queries):
        raise NotImplementedError


class LopsidedLayer(BackendLayer):
    def submit(self, query):
        return query

    def submit_many(self, queries):
        return list(queries)

"""R6 fixture: scenario recipe wires layers innermost-first (canonical order).

Only meaningful when presented under a ``recipes.py`` display path (the
scenario harness's composition module); the tests arrange that when
constructing the :class:`ModuleSource`.
"""


def guarded_chaos_recipe(raw, budget, seed):
    layer = CircuitBreakerLayer(raw)
    layer = UnreliableLayer(layer, seed=seed)
    layer = BudgetLayer(layer, budget=budget)
    return StatisticsLayer(layer)


def storm_recipe(raw, schedule):
    # A single ranked mention is always fine — the rule fires on
    # composition order, not on layer use.
    return UnreliableLayer(raw, schedule=schedule)

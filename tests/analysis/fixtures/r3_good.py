"""R3 fixture: narrow excepts, re-raise escape hatch, typed raises only."""

from repro.exceptions import ConfigurationError, TransientBackendError


def parse_port(raw):
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ConfigurationError(f"not a port: {raw!r}")


def annotate_and_reraise(operation):
    try:
        return operation()
    except Exception:
        # A broad catch is fine when the handler re-raises: nothing is
        # swallowed, the exception is merely observed on the way through.
        raise


def retry_once(operation):
    try:
        return operation()
    except TransientBackendError:
        return operation()

"""R1 fixture: every guarded attribute is touched under its declared lock."""

import threading


class Counter:
    _guarded_by = {"count": "_lock", "events": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.events = []

    def bump(self, amount):
        with self._lock:
            self.count += amount
            self.events.append(amount)

    def read(self):
        with self._lock:
            return self.count

    def _drain_locked(self):
        # ``*_locked`` helpers document that the caller already holds the lock.
        total = self.count
        self.count = 0
        self.events.clear()
        return total

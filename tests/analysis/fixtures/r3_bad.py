"""R3 fixture: a broad except that swallows, and an untyped raise.

The broad except is flagged anywhere.  The ``raise ValueError`` is flagged
only when this module is presented under a typed-boundary path
(``repro/backends/`` or ``repro/web/``), which the tests arrange via the
``display_path`` of the constructed :class:`ModuleSource`.
"""


def swallow(operation):
    try:
        return operation()
    except Exception:
        return None


def reject(value):
    if value < 0:
        raise ValueError("negative")
    return value

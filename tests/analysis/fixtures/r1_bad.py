"""R1 fixture: guarded attributes mutated outside their declared lock."""

import threading


class Counter:
    _guarded_by = {"count": "_lock", "events": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.events = []

    def bump(self, amount):
        self.count += amount

    def log(self, amount):
        self.events.append(amount)

"""Runtime half of the R5 lock-order invariant.

Synthetic tests pin down :class:`OrderedLock` / :class:`LockOrderRegistry`
semantics (inversions fail loudly *before* blocking); the integration test
instruments a real striped ``HistoryLayer`` with ordered locks, hammers it
from eight threads, and checks the observed acquisition edges against the
statically-extracted graph.  The tree deliberately never nests its locks —
the static graph over ``src/repro`` is empty — so the instrumented run must
observe no held-while-acquiring edges at all.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.analysis.rules.lock_order import extract_lock_graph
from repro.analysis.runtime import LockOrderError, LockOrderRegistry, OrderedLock
from repro.backends import HistoryLayer, QueryEngineBackend
from repro.database.query import ConjunctiveQuery
from repro.database.ranking import StaticScoreRanking

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"
N_THREADS = 8


class TestOrderedLockSemantics:
    def test_consistent_nesting_is_fine(self):
        registry = LockOrderRegistry()
        outer = OrderedLock("A._lock", registry)
        inner = OrderedLock("A._stats_lock", registry)
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert registry.edges() == {"A._lock": {"A._stats_lock"}}

    def test_inversion_raises_instead_of_deadlocking(self):
        registry = LockOrderRegistry()
        outer = OrderedLock("A._lock", registry)
        inner = OrderedLock("A._stats_lock", registry)
        with outer:
            with inner:
                pass
        with pytest.raises(LockOrderError):
            with inner:
                with outer:
                    pass

    def test_non_nested_use_records_no_edges(self):
        registry = LockOrderRegistry()
        lock_a = OrderedLock("A._lock", registry)
        lock_b = OrderedLock("B._lock", registry)
        with lock_a:
            pass
        with lock_b:
            pass
        with lock_a:
            pass
        assert registry.edges() == {}

    def test_failed_nonblocking_acquire_leaves_no_held_entry(self):
        registry = LockOrderRegistry()
        lock = OrderedLock("A._lock", registry)
        other = OrderedLock("B._lock", registry)
        blocker = threading.Thread(target=lock.acquire)
        blocker.start()
        blocker.join()
        # The lock is now held by a finished thread; a try-acquire fails and
        # must not leave a phantom entry on this thread's held stack.
        assert not lock.acquire(blocking=False)
        with other:
            pass
        assert registry.edges() == {}


def _workload(schema, seed: int, count: int):
    rng = random.Random(seed)
    queries = [ConjunctiveQuery.empty(schema)]
    while len(queries) < count:
        if rng.random() < 0.4 and len(queries) > 1:
            queries.append(rng.choice(queries))
        else:
            assignment = {
                attribute.name: rng.choice(attribute.domain.values)
                for attribute in schema
                if rng.random() < 0.5
            }
            queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


class TestRuntimeMatchesStaticGraph:
    def test_instrumented_history_layer_confirms_the_static_graph(self, tiny_table, tiny_schema):
        static = extract_lock_graph([SRC_REPRO])
        registry = LockOrderRegistry()
        layer = HistoryLayer(
            QueryEngineBackend(tiny_table, k=2, ranking=StaticScoreRanking())
        )
        layer._stats_lock = OrderedLock("HistoryLayer._stats_lock", registry)
        for stripe in layer._stripe_list:
            stripe.lock = OrderedLock("_Stripe.lock", registry)
        queries = _workload(tiny_schema, seed=13, count=64)
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            responses = list(pool.map(layer.submit, queries))
        assert len(responses) == len(queries)
        observed = registry.edges()
        for source, targets in observed.items():
            assert targets <= static.get(source, set()), (
                f"runtime observed lock edge(s) {source} -> {sorted(targets)} "
                f"that the static R5 graph does not predict"
            )
        # The codebase's locking style is deliberately flat: statistics get a
        # dedicated lock precisely so stripe locks never nest.  The static
        # graph over src/repro is empty, so the run must observe no nesting.
        assert not any(
            source.startswith(("HistoryLayer.", "_Stripe.")) for source in observed
        )

"""E5 (Section 3.1): the efficiency ↔ skew slider.

Sweeps the slider from the lowest-skew end to the highest-efficiency end on a
skewed boolean database and reports, per position, the acceptance rate,
queries per accepted sample, and the total variation distance of the sampled
marginal of the most skewed attribute from the ground truth.
"""

from __future__ import annotations

from conftest import record_report

from repro.analytics.report import render_table
from repro.analytics.skew import total_variation_distance
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.database.stats import ground_truth_marginal
from repro.datasets.boolean import BooleanConfig, generate_boolean_table

POSITIONS = (0.1, 0.3, 0.5, 0.75, 1.0)
N_SAMPLES = 100


def _build_table():
    return generate_boolean_table(
        BooleanConfig(
            n_rows=1_500, n_attributes=8, distribution="zipf",
            probability=0.7, skew=1.0, seed=41,
        )
    )


def _run_position(table, position: float):
    interface = HiddenDatabaseInterface(table, k=10, seed=0)
    config = HDSamplerConfig(
        n_samples=N_SAMPLES,
        tradeoff=TradeoffSlider(position),
        max_attempts=15_000,
        seed=43,
    )
    result = HDSampler(interface, config).run()
    truth = ground_truth_marginal(table, "a1")
    distance = total_variation_distance(result.marginal_distribution("a1"), truth)
    return result, distance


def test_tradeoff_slider_sweep(benchmark):
    table = _build_table()

    def run_sweep():
        return [(position, _run_position(table, position)) for position in POSITIONS]

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for position, (result, distance) in sweep:
        rows.append(
            [
                f"{position:.2f}",
                str(result.sample_count),
                f"{result.queries_per_sample:.2f}" if result.sample_count else "inf",
                f"{result.processor_report['acceptance_rate']:.3f}",
                f"{distance:.3f}",
            ]
        )
    table_text = render_table(
        ["slider (0=low skew, 1=fast)", "samples", "queries/sample", "acceptance rate", "TV(a1) vs truth"],
        rows,
    )
    lines = table_text.splitlines() + [
        "",
        "expected shape: moving the slider toward 1 raises the acceptance rate and",
        "lowers queries/sample; the residual marginal error (TV) tends to grow in",
        "exchange (noisily at this sample size) — the paper's efficiency versus",
        "skew tradeoff.",
    ]
    record_report("E5", "efficiency-skew slider sweep (boolean zipf, k=10)", lines)

    by_position = dict(sweep)
    fast = by_position[1.0][0]
    assert fast.sample_count == N_SAMPLES
    # Acceptance monotonicity at the endpoints.
    assert (
        by_position[1.0][0].processor_report["acceptance_rate"]
        >= by_position[0.3][0].processor_report["acceptance_rate"]
    )
    # Query cost drops as the slider moves toward efficiency.
    collected = [(p, r.queries_per_sample) for p, (r, _) in sweep if r.sample_count > 0]
    assert collected[-1][1] <= collected[0][1]

"""E2 (Figure 2 / Section 3): end-to-end throughput of the four-module pipeline.

Runs the full generator → processor → output pipeline on the simulated
vehicles catalogue and reports the numbers the demo's progress view shows:
samples collected, interface queries spent, queries per sample, acceptance
rate of the Sample Processor, and query savings of the history cache.
"""

from __future__ import annotations

from conftest import record_report

from repro.analytics.report import render_key_values
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider

N_SAMPLES = 200


def _run_pipeline(interface) -> dict:
    config = HDSamplerConfig(
        n_samples=N_SAMPLES,
        attributes=("make", "color", "body_style", "condition"),
        tradeoff=TradeoffSlider(0.6),
        seed=17,
    )
    result = HDSampler(interface, config).run()
    return result.summary()


def test_pipeline_throughput(benchmark, vehicles_interface):
    summary = benchmark.pedantic(_run_pipeline, args=(vehicles_interface,), rounds=1, iterations=1)

    lines = render_key_values(
        [
            ("samples collected", summary["samples"]),
            ("interface queries issued", summary["queries_issued"]),
            ("queries per sample", f"{summary['queries_per_sample']:.2f}"),
            ("processor acceptance rate", f"{summary['processor_acceptance_rate']:.3f}"),
            ("failed walks", int(summary["generator_failed_walks"])),
            ("history: submissions", int(summary["history_submissions"])),
            ("history: answered locally", int(summary["history_saved"])),
            ("history: saving ratio", f"{summary['history_saving_ratio']:.3f}"),
            ("terminal state", summary["state"]),
        ]
    ).splitlines()
    record_report("E2", "end-to-end pipeline throughput (vehicles, k=100, 200 samples)", lines)

    assert summary["samples"] == N_SAMPLES
    assert summary["queries_per_sample"] > 1.0

"""E12 (service layer): warm-extension savings and round-robin concurrency.

Two claims of the job-oriented ``SamplingService`` API are measured here:

1. ``job.extend(n)`` on a finished job collects the extra samples through the
   session's warm query-history cache, so the *marginal* interface cost is
   measurably lower than a cold run of the same extra count;
2. ``service.run_all()`` interleaves several analyst workloads round-robin,
   keeping their attempt counts within one of each other while they share a
   backend — concurrency without starvation.
"""

from __future__ import annotations

from conftest import record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.datasets.boolean import BooleanConfig, generate_boolean_table
from repro.service import SamplingService

BASE_SAMPLES = 200
EXTRA_SAMPLES = 60
CONCURRENT_JOBS = 4


def _build_table():
    # Correlated boolean data creates many repeated sub-queries, the situation
    # the history optimisation (and therefore warm extension) exploits best.
    return generate_boolean_table(
        BooleanConfig(
            n_rows=2_000, n_attributes=8, distribution="correlated",
            probability=0.6, skew=0.7, seed=71,
        )
    )


def _config(n_samples: int) -> HDSamplerConfig:
    return HDSamplerConfig(
        n_samples=n_samples, tradeoff=TradeoffSlider(0.8), max_attempts=40_000, seed=73,
    )


def _run_extension(table):
    # Warm path: finish a base job, then extend it on the same session.
    warm_interface = HiddenDatabaseInterface(table, k=15, seed=0)
    warm_job = SamplingService(warm_interface).submit(_config(BASE_SAMPLES))
    warm_job.run()
    queries_before = warm_job.queries_issued
    warm_job.extend(EXTRA_SAMPLES).run()
    warm_delta = warm_job.queries_issued - queries_before

    # Cold reference: a fresh job collecting only the extra count.
    cold_interface = HiddenDatabaseInterface(table, k=15, seed=0)
    cold_job = SamplingService(cold_interface).submit(_config(EXTRA_SAMPLES))
    cold_job.run()

    return warm_job, warm_delta, cold_job.queries_issued


def _run_concurrent(table):
    interface = HiddenDatabaseInterface(table, k=15, seed=0)
    service = SamplingService(interface)
    jobs = [
        service.submit(_config(BASE_SAMPLES // 2), job_id=f"analyst-{i}")
        for i in range(CONCURRENT_JOBS)
    ]
    # Partial schedule first so fairness is observable mid-flight, then finish.
    service.run_all(max_steps=CONCURRENT_JOBS * 25)
    mid_attempts = [job.session.attempts for job in jobs]
    service.run_all()
    return service, jobs, mid_attempts


def test_service_extension_and_concurrency(benchmark):
    table = _build_table()

    def run_both():
        return _run_extension(table), _run_concurrent(table)

    (warm_job, warm_delta, cold_queries), (service, jobs, mid_attempts) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    saving = 1.0 - warm_delta / cold_queries if cold_queries else 0.0
    extension_rows = [
        ["warm extend() on finished job", str(EXTRA_SAMPLES), str(warm_delta),
         f"{warm_delta / EXTRA_SAMPLES:.2f}"],
        ["cold run of the same count", str(EXTRA_SAMPLES), str(cold_queries),
         f"{cold_queries / EXTRA_SAMPLES:.2f}"],
    ]
    extension_table = render_table(
        ["path", "extra samples", "interface queries", "queries/sample"], extension_rows
    )

    concurrency_rows = [
        [job.job_id, job.state.value, str(job.samples_collected), str(job.session.attempts), str(mid)]
        for job, mid in zip(jobs, mid_attempts)
    ]
    concurrency_table = render_table(
        ["job", "state", "samples", "attempts (final)", "attempts (mid-run)"], concurrency_rows
    )

    lines = extension_table.splitlines() + [
        "",
        f"warm extension saved {saving:.1%} of the interface queries a cold run",
        f"of the same {EXTRA_SAMPLES} samples would have paid.",
        "",
    ] + concurrency_table.splitlines() + [
        "",
        f"round-robin fairness: mid-run attempt spread = "
        f"{max(mid_attempts) - min(mid_attempts)} (bounded by 1 by the scheduler).",
    ]
    record_report("E12", "sampling service: warm extension and fair concurrency", lines)

    assert warm_job.samples_collected == BASE_SAMPLES + EXTRA_SAMPLES
    assert warm_delta < cold_queries
    assert max(mid_attempts) - min(mid_attempts) <= 1
    assert all(job.done for job in jobs)

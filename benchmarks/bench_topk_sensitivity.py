"""E6 (Section 2): sensitivity to the interface's top-k limit.

The paper lists real top-k limits from k=25 (MSN Stock Screener) to k=4000
(MSN Career).  This benchmark samples the same catalogue behind interfaces
with different k and reports how the query cost per sample falls as the
interface becomes more generous — larger k means broader queries already
return without overflow, so drill-downs terminate earlier.
"""

from __future__ import annotations

from conftest import make_vehicles_interface, record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider

K_VALUES = (25, 100, 500, 1000)
N_SAMPLES = 120
ATTRIBUTES = ("make", "color", "body_style", "condition")


def _run_for_k(vehicles_table, k: int):
    interface = make_vehicles_interface(vehicles_table, k=k)
    config = HDSamplerConfig(
        n_samples=N_SAMPLES, attributes=ATTRIBUTES, tradeoff=TradeoffSlider(0.6), seed=51
    )
    return HDSampler(interface, config).run()


def test_topk_sensitivity(benchmark, vehicles_table):
    def run_sweep():
        return [(k, _run_for_k(vehicles_table, k)) for k in K_VALUES]

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for k, result in sweep:
        rows.append(
            [
                str(k),
                str(result.sample_count),
                str(result.queries_issued),
                f"{result.queries_per_sample:.2f}",
                f"{result.generator_report['failed_walks']:.0f}",
            ]
        )
    table = render_table(["k", "samples", "queries", "queries/sample", "failed walks"], rows)
    lines = table.splitlines() + [
        "",
        "expected shape: larger k means broad queries stop overflowing sooner, so",
        "walks are shorter and queries/sample decreases monotonically (paper lists",
        "k=25..4000 across real interfaces).",
    ]
    record_report("E6", "top-k sensitivity (vehicles)", lines)

    by_k = dict(sweep)
    assert by_k[1000].queries_per_sample <= by_k[25].queries_per_sample
    for _, result in sweep:
        assert result.sample_count == N_SAMPLES

"""E3 (Figure 3): restricting sampling to analyst-chosen attribute subsets.

The front end lets the analyst point HDSampler at a specific selection of
attributes.  This benchmark samples two different sub-schemas of the vehicles
catalogue and reports, per subset, the query cost and the marginal accuracy of
the subset's first attribute — showing that narrower drill-down spaces are
cheaper to sample at equal accuracy.
"""

from __future__ import annotations

from conftest import make_vehicles_interface, record_report

from repro.analytics.report import render_table
from repro.analytics.skew import total_variation_distance
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.stats import ground_truth_marginal

N_SAMPLES = 150
SUBSETS = [
    ("make+price", ("make", "price")),
    ("make+model+year", ("make", "model", "year")),
    ("all attributes", None),
]


def _run_subset(vehicles_table, attributes):
    interface = make_vehicles_interface(vehicles_table)
    config = HDSamplerConfig(
        n_samples=N_SAMPLES, attributes=attributes, tradeoff=TradeoffSlider(0.6), seed=23
    )
    result = HDSampler(interface, config).run()
    first_attribute = attributes[0] if attributes else "make"
    truth = ground_truth_marginal(vehicles_table, first_attribute)
    distance = total_variation_distance(result.marginal_distribution(first_attribute), truth)
    return result, first_attribute, distance


def test_attribute_subset_selection(benchmark, vehicles_table):
    def run_all():
        return [(label, _run_subset(vehicles_table, attributes)) for label, attributes in SUBSETS]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (result, first_attribute, distance) in results:
        rows.append(
            [
                label,
                str(result.sample_count),
                str(result.queries_issued),
                f"{result.queries_per_sample:.2f}",
                f"{first_attribute}: {distance:.3f}",
            ]
        )
    table = render_table(
        ["attribute subset", "samples", "queries", "queries/sample", "TV distance of 1st attr"], rows
    )
    lines = table.splitlines() + [
        "",
        "expected shape: smaller subsets drill through fewer levels, so their",
        "queries/sample is lower than sampling over the full schema.",
    ]
    record_report("E3", "attribute/value-binding selection (Figure 3)", lines)

    per_label = {label: payload[0] for label, payload in results}
    assert per_label["make+price"].queries_per_sample <= per_label["all attributes"].queries_per_sample * 1.5
    for _, (result, _, _) in results:
        assert result.sample_count == N_SAMPLES

"""Shared infrastructure of the benchmark harness.

Every benchmark reproduces one experiment of DESIGN.md (E1–E11).  Besides the
pytest-benchmark timing, each benchmark registers the *rows/series the paper
reports* (marginal percentages, queries per sample, savings ratios, ...)
through :func:`record_report`; they are printed in the terminal summary at the
end of the run so that ``pytest benchmarks/ --benchmark-only`` produces both
the timing table and the experiment tables in one pass.
"""

from __future__ import annotations

import pytest

from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.datasets.vehicles import VehiclesConfig, default_vehicles_ranking, generate_vehicles_table

#: Ordered registry of experiment reports: (experiment id, title, lines).
_REPORTS: list[tuple[str, str, list[str]]] = []


def record_report(experiment_id: str, title: str, lines: list[str]) -> None:
    """Register the printable rows of one experiment for the terminal summary."""
    _REPORTS.append((experiment_id, title, [str(line) for line in lines]))


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103 - pytest hook
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "HDSampler reproduction: experiment reports")
    for experiment_id, title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", f"{experiment_id}: {title}")
        for line in lines:
            terminalreporter.write_line(line)
    terminalreporter.write_line("")


# ------------------------------------------------------------------------------------
# Shared workloads (kept moderate so the whole harness runs in a few minutes)
# ------------------------------------------------------------------------------------


@pytest.fixture(scope="session")
def vehicles_table():
    """The simulated Google Base Vehicles catalogue used by the E2–E9 benches."""
    return generate_vehicles_table(VehiclesConfig(n_rows=5_000, seed=2009))


@pytest.fixture()
def vehicles_interface(vehicles_table):
    """A fresh count-free interface over the catalogue (k=100, score ranking)."""
    return HiddenDatabaseInterface(
        vehicles_table,
        k=100,
        ranking=default_vehicles_ranking(),
        count_mode=CountMode.NONE,
        display_columns=("title",),
        seed=0,
    )


def make_vehicles_interface(vehicles_table, k: int = 100, count_mode: CountMode = CountMode.NONE):
    """Build a fresh interface with custom ``k``/count mode (benchmarks vary these)."""
    return HiddenDatabaseInterface(
        vehicles_table,
        k=k,
        ranking=default_vehicles_ranking(),
        count_mode=count_mode,
        display_columns=("title",),
        seed=0,
    )

"""E8 (Section 3.4): approximate aggregate queries versus sample size.

The output module answers COUNT / SUM / AVG queries from the sample set.  The
benchmark grows the sample size and reports the relative error of three
representative aggregates against the exact answers computed from the local
ground truth — the "percentage of Japanese cars" style question from the
paper's introduction among them.
"""

from __future__ import annotations

from conftest import make_vehicles_interface, record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.stats import ground_truth_aggregate

SAMPLE_SIZES = (50, 100, 200, 400)
# Enough attributes that fully-specified queries stay below the top-k limit;
# with a coarse 3-attribute scope the popular leaves would overflow and the
# corresponding tuples would be unreachable, biasing every aggregate.
ATTRIBUTES = ("make", "condition", "price", "color", "body_style")
JAPANESE_MAKES = {"Toyota", "Honda", "Nissan", "Subaru", "Lexus", "Mazda"}


def _truths(vehicles_table):
    japanese_share = sum(
        1 for row in vehicles_table if row["country"] == "Japan"
    ) / len(vehicles_table)
    used_share = sum(1 for row in vehicles_table if row["condition"] == "used") / len(vehicles_table)
    avg_price = ground_truth_aggregate(vehicles_table, "avg", "price")
    return japanese_share, used_share, avg_price


def _run_for_size(vehicles_table, n_samples: int):
    interface = make_vehicles_interface(vehicles_table)
    config = HDSamplerConfig(
        n_samples=n_samples, attributes=ATTRIBUTES, tradeoff=TradeoffSlider(0.45), seed=71
    )
    result = HDSampler(interface, config).run()
    japanese = sum(
        1 for sample in result.samples if sample.values["make"] in JAPANESE_MAKES
    ) / result.sample_count
    used = result.aggregate("count", condition={"condition": "used"}).value
    avg_price = result.aggregate("avg", measure_attribute="price").value
    return result, japanese, used, avg_price


def test_aggregate_accuracy_vs_sample_size(benchmark, vehicles_table):
    true_japanese, true_used, true_avg_price = _truths(vehicles_table)

    def run_sweep():
        return [(n, _run_for_size(vehicles_table, n)) for n in SAMPLE_SIZES]

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for n_samples, (result, japanese, used, avg_price) in sweep:
        rows.append(
            [
                str(n_samples),
                f"{japanese:6.1%} / {true_japanese:6.1%}",
                f"{used:6.1%} / {true_used:6.1%}",
                f"{avg_price:9.0f} / {true_avg_price:9.0f}",
                f"{result.queries_issued}",
            ]
        )
    table = render_table(
        ["samples", "japanese share (est/true)", "used share (est/true)",
         "avg price (est/true)", "queries"],
        rows,
    )
    lines = table.splitlines() + [
        "",
        "expected shape: estimates of all three aggregates converge toward the",
        "ground truth as the sample size grows, at a query cost that stays orders",
        "of magnitude below crawling the catalogue.",
    ]
    record_report("E8", "aggregate-query accuracy vs sample size", lines)

    final = sweep[-1][1]
    assert abs(final[1] - true_japanese) < 0.15
    assert abs(final[2] - true_used) < 0.25
    assert abs(final[3] - true_avg_price) / true_avg_price < 0.4

"""E1 (Figure 1): random drill-downs over the paper's example boolean database.

Reproduces the query-tree semantics of Figure 1: the walk starts from broad
queries, narrows with random predicates, and terminates at valid or empty
nodes.  The report lists, for every tuple t1–t4, the empirical probability of
being produced by an unconstrained walk (before acceptance–rejection) and the
average number of queries per walk — the quantities the SIGMOD'07 analysis
reasons about on this exact example.
"""

from __future__ import annotations

import collections

from conftest import record_report

from repro.algorithms.acceptance_rejection import AcceptAllPolicy
from repro.algorithms.ordering import FixedOrdering
from repro.algorithms.random_walk import RandomWalkConfig, RandomWalkSampler
from repro.analytics.report import render_table
from repro.database.interface import HiddenDatabaseInterface
from repro.database.ranking import RowIdRanking
from repro.datasets.boolean import figure1_table

N_WALKS = 3_000


def _run_walks(n_walks: int) -> tuple[collections.Counter, int, int]:
    table = figure1_table()
    interface = HiddenDatabaseInterface(table, k=1, ranking=RowIdRanking(), seed=0)
    sampler = RandomWalkSampler(
        interface,
        config=RandomWalkConfig(efficiency=1.0),
        ordering=FixedOrdering(),
        acceptance_policy=AcceptAllPolicy(),
        seed=1,
    )
    hits: collections.Counter = collections.Counter()
    for _ in range(n_walks):
        candidate = sampler.draw_candidate()
        if candidate is not None:
            hits[candidate.tuple_id] += 1
    return hits, sampler.report.queries_issued, sampler.report.failed_walks


def test_fig1_drilldown_reachability(benchmark):
    hits, queries, failed = benchmark(_run_walks, N_WALKS)
    total_hits = sum(hits.values())

    rows = []
    labels = {0: "t1 (001)", 1: "t2 (010)", 2: "t3 (011)", 3: "t4 (110)"}
    for tuple_id in range(4):
        share = hits[tuple_id] / total_hits if total_hits else 0.0
        rows.append([labels[tuple_id], f"{hits[tuple_id]}", f"{share:6.1%}"])
    table = render_table(["tuple", "walks reaching it", "share (no rejection)"], rows)
    lines = table.splitlines() + [
        "",
        f"walks: {N_WALKS}, failed walks: {failed}, queries issued: {queries}, "
        f"queries/walk: {queries / N_WALKS:.2f}",
        "expected shape: t4 (valid at depth 1) is over-represented versus t1-t3,",
        "which is exactly the skew acceptance-rejection removes.",
    ]
    record_report("E1", "Figure 1 query-tree drill-down", lines)

    assert set(hits) == {0, 1, 2, 3}
    assert hits[3] > hits[0]

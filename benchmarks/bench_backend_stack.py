"""Backend-stack benchmark: layer overhead and web-path history savings (PR 3).

Two questions the composable access path must answer for:

* **Overhead** — a full ``engine_stack`` (count-mode + budget + statistics
  layers) must cost ≤ 15% wall-clock over the raw ``QueryEngineBackend`` it
  wraps, otherwise the refactor taxed every query to pay for structure.
* **Savings** — a warm ``HistoryLayer`` on the *web* path must save ≥ 30% of
  page fetches on a workload with repeated / inferable queries, otherwise
  lifting the cache out of the sampler core bought nothing for scraping.

A third, informational section times the sharded stack (4 partitions behind
a ``ShardRouter`` sharing one ``TableIndex``) against the flat stack.

Like ``bench_engine_scaling.py`` this is a standalone script so CI can run
it as a smoke check:

    PYTHONPATH=src python benchmarks/bench_backend_stack.py            # full run
    PYTHONPATH=src python benchmarks/bench_backend_stack.py --quick    # reduced workload
    PYTHONPATH=src python benchmarks/bench_backend_stack.py --check    # assert the floors

Results are written to ``BENCH_backend.json`` so the repo's performance
trajectory is recorded run over run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import QueryEngineBackend, engine_stack, sharded_stack, web_stack
from repro.database.query import ConjunctiveQuery
from repro.datasets.vehicles import (
    VehiclesConfig,
    default_vehicles_ranking,
    generate_vehicles_table,
    vehicles_schema,
)
from repro.web.server import HiddenWebSite

K = 100
SEED = 2026
N_SHARDS = 4

#: Acceptance floors: stack overhead over the raw adapter, and the fraction
#: of page fetches a warm history layer must save on the repetitive workload.
MAX_OVERHEAD = 0.15
MIN_WEB_SAVINGS = 0.30


def _random_queries(schema, rng: random.Random, count: int, min_preds: int = 1, max_preds: int = 3):
    queries = []
    for _ in range(count):
        n = rng.randint(min_preds, min(max_preds, len(schema)))
        attributes = rng.sample(schema.attribute_names, n)
        assignment = {
            name: rng.choice(schema.attribute(name).domain.values) for name in attributes
        }
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


def _best_time(action, operands, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of running ``action`` over ``operands``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for operand in operands:
            action(operand)
        best = min(best, time.perf_counter() - start)
    return best


def bench_overhead(table, queries) -> dict:
    """Full layer stack vs the raw engine adapter, same workload."""
    ranking = default_vehicles_ranking()
    raw = QueryEngineBackend(table, k=K, ranking=ranking, display_columns=("title",))
    stack = engine_stack(table, k=K, ranking=ranking, display_columns=("title",))
    # Equivalence smoke check before timing (modulo the count the NONE-mode
    # layer deliberately hides).
    for query in queries[:20]:
        fast, slow = raw.submit(query), stack.submit(query)
        assert [t.tuple_id for t in fast.tuples] == [t.tuple_id for t in slow.tuples], str(query)
        assert fast.overflow == slow.overflow and slow.reported_count is None
    raw_time = _best_time(raw.submit, queries)
    stack_time = _best_time(stack.submit, queries)
    overhead = stack_time / raw_time - 1.0 if raw_time > 0 else 0.0
    return {
        "queries": len(queries),
        "raw_ops_per_sec": round(len(queries) / raw_time, 1),
        "stack_ops_per_sec": round(len(queries) / stack_time, 1),
        "overhead": round(overhead, 4),
        "layers": stack.describe(),
    }


def bench_web_history(table, rng: random.Random, n_distinct: int, n_submissions: int) -> dict:
    """Page fetches with and without a warm history layer on the web path.

    The workload re-submits queries drawn (with replacement) from a fixed
    pool plus one-step specialisations of them — the access pattern of a
    drill-down sampler, where the history layer answers repeats verbatim and
    specialisations of valid/empty ancestors by inference.
    """
    schema = table.schema
    ranking = default_vehicles_ranking()
    pool = _random_queries(schema, rng, n_distinct, 2, 4)
    workload = []
    for _ in range(n_submissions):
        query = rng.choice(pool)
        if rng.random() < 0.4 and query.free_attributes:
            attribute = rng.choice(query.free_attributes)
            value = rng.choice(schema.attribute(attribute).domain.values)
            query = query.specialise(attribute, value)
        workload.append(query)

    results = {}
    for label, history in (("plain", False), ("history", True)):
        site = HiddenWebSite(
            QueryEngineBackend(table, k=K, ranking=ranking, display_columns=("title",))
        )
        client = web_stack(site, vehicles_schema(), display_columns=("title",), history=history)
        start = time.perf_counter()
        for query in workload:
            client.submit(query)
        elapsed = time.perf_counter() - start
        results[label] = {
            "pages_fetched": site.pages_served,
            "ops_per_sec": round(len(workload) / elapsed, 1) if elapsed > 0 else float("inf"),
        }
        if history:
            assert client.history is not None
            results[label]["history"] = client.history.statistics.as_dict()
    plain = results["plain"]["pages_fetched"]
    warm = results["history"]["pages_fetched"]
    savings = 1.0 - warm / plain if plain else 0.0
    return {
        "submissions": n_submissions,
        "distinct_pool": n_distinct,
        "plain": results["plain"],
        "history": results["history"],
        "fetch_savings": round(savings, 4),
    }


def bench_sharded(table, queries) -> dict:
    """Informational: the sharded stack vs the flat stack, same workload."""
    ranking = default_vehicles_ranking()
    flat = engine_stack(table, k=K, ranking=ranking)
    sharded = sharded_stack(table, N_SHARDS, k=K, ranking=ranking)
    for query in queries[:20]:
        assert sharded.submit(query) == flat.submit(query), str(query)
    flat_time = _best_time(flat.submit, queries)
    sharded_time = _best_time(sharded.submit, queries)
    return {
        "n_shards": N_SHARDS,
        "flat_ops_per_sec": round(len(queries) / flat_time, 1),
        "sharded_ops_per_sec": round(len(queries) / sharded_time, 1),
        "scatter_gather_cost": round(sharded_time / flat_time, 2),
    }


def run(n_rows: int, n_queries: int, n_distinct: int, n_submissions: int) -> dict:
    rng = random.Random(SEED)
    table = generate_vehicles_table(VehiclesConfig(n_rows=n_rows, seed=SEED))
    queries = _random_queries(table.schema, rng, n_queries, 1, 4)
    overhead = bench_overhead(table, queries)
    web = bench_web_history(table, rng, n_distinct, n_submissions)
    sharded = bench_sharded(table, queries)
    print(
        f"rows={n_rows}  stack: {overhead['stack_ops_per_sec']:>8.1f} vs raw "
        f"{overhead['raw_ops_per_sec']:>8.1f} q/s ({overhead['overhead'] * 100:+.1f}%)   "
        f"web fetches: {web['history']['pages_fetched']} vs {web['plain']['pages_fetched']} "
        f"({web['fetch_savings'] * 100:.1f}% saved)   "
        f"scatter/gather: {sharded['scatter_gather_cost']:.2f}x"
    )
    return {
        "k": K,
        "seed": SEED,
        "rows": n_rows,
        "stack_overhead": overhead,
        "web_history": web,
        "sharded": sharded,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail if overhead or savings regress past the floors")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_backend.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(n_rows=2_000, n_queries=300, n_distinct=40, n_submissions=150)
    else:
        report = run(n_rows=10_000, n_queries=600, n_distinct=80, n_submissions=400)
    report["mode"] = "quick" if args.quick else "full"

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        overhead = report["stack_overhead"]["overhead"]
        savings = report["web_history"]["fetch_savings"]
        failed = False
        if overhead > MAX_OVERHEAD:
            print(f"FAIL: stack overhead {overhead * 100:.1f}% > {MAX_OVERHEAD * 100:.0f}% ceiling")
            failed = True
        if savings < MIN_WEB_SAVINGS:
            print(f"FAIL: web fetch savings {savings * 100:.1f}% < {MIN_WEB_SAVINGS * 100:.0f}% floor")
            failed = True
        if failed:
            return 1
        print(
            f"check passed: overhead {overhead * 100:.1f}% <= {MAX_OVERHEAD * 100:.0f}%, "
            f"web savings {savings * 100:.1f}% >= {MIN_WEB_SAVINGS * 100:.0f}%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

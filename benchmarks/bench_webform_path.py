"""E11 (Section 4, backup plan): the HTML scraping path vs the direct interface.

The demo runs against a real web form; the backup plan runs against a locally
simulated source.  This benchmark shows the two access paths are
interchangeable: with the same seed the sampler draws the identical sample
set, and the report quantifies the overhead of rendering and parsing HTML for
every query.
"""

from __future__ import annotations

import time

from conftest import record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.datasets.vehicles import default_vehicles_ranking, vehicles_schema
from repro.web.client import WebFormClient
from repro.web.server import HiddenWebSite

N_SAMPLES = 100
ATTRIBUTES = ("make", "color")


def _make_backend(vehicles_table):
    return HiddenDatabaseInterface(
        vehicles_table, k=100, ranking=default_vehicles_ranking(),
        count_mode=CountMode.EXACT, display_columns=("title",), seed=0,
    )


def _run(database):
    config = HDSamplerConfig(
        n_samples=N_SAMPLES, attributes=ATTRIBUTES, tradeoff=TradeoffSlider(0.7), seed=101
    )
    started = time.perf_counter()
    result = HDSampler(database, config).run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_webform_path_equals_direct_path(benchmark, vehicles_table):
    def run_web_path():
        site = HiddenWebSite(_make_backend(vehicles_table))
        client = WebFormClient(site, vehicles_schema(), display_columns=("title",))
        return _run(client)

    web_result, web_elapsed = benchmark.pedantic(run_web_path, rounds=1, iterations=1)
    direct_result, direct_elapsed = _run(_make_backend(vehicles_table))

    overhead = web_elapsed / direct_elapsed if direct_elapsed > 0 else float("inf")
    rows = [
        ["direct interface", str(direct_result.sample_count), str(direct_result.queries_issued),
         f"{direct_elapsed:.2f}s"],
        ["HTML form scraping", str(web_result.sample_count), str(web_result.queries_issued),
         f"{web_elapsed:.2f}s"],
    ]
    table = render_table(["access path", "samples", "interface queries", "wall clock"], rows)
    identical = [s.tuple_id for s in web_result.samples] == [s.tuple_id for s in direct_result.samples]
    lines = table.splitlines() + [
        "",
        f"identical sample sets under the same seed: {identical}",
        f"HTML render/parse overhead factor: {overhead:.2f}x",
        "expected shape: the scraping path returns exactly the same samples and",
        "query counts; only wall-clock time grows by the HTML processing overhead.",
    ]
    record_report("E11", "web-form scraping path vs direct interface", lines)

    assert identical
    assert web_result.queries_issued == direct_result.queries_issued

"""E4 (Figure 4 + Section 3.4): marginal histograms vs the uniform baseline.

The paper's headline artefact: histograms of attribute marginals computed from
HDSampler's samples, validated against BRUTE-FORCE-SAMPLER (provably uniform)
and — because our hidden database is local — against the exact ground truth.
The report prints the ``make`` histogram side by side for all three, plus the
total variation distance of each sampler from the truth.
"""

from __future__ import annotations

from conftest import make_vehicles_interface, record_report

from repro.analytics.histogram import histogram_from_samples, histogram_from_table
from repro.analytics.report import render_table
from repro.analytics.skew import total_variation_distance
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.stats import ground_truth_marginal

N_SAMPLES = 250
ATTRIBUTES = ("make", "color", "condition")


def _run_both(vehicles_table):
    hd_result = HDSampler(
        make_vehicles_interface(vehicles_table),
        HDSamplerConfig(
            n_samples=N_SAMPLES, attributes=ATTRIBUTES, tradeoff=TradeoffSlider(0.45), seed=31
        ),
    ).run()
    bf_result = HDSampler(
        make_vehicles_interface(vehicles_table),
        HDSamplerConfig(
            n_samples=N_SAMPLES,
            attributes=ATTRIBUTES,
            algorithm=SamplerAlgorithm.BRUTE_FORCE,
            max_attempts=2_000_000,
            seed=32,
        ),
    ).run()
    return hd_result, bf_result


def test_fig4_marginal_histograms(benchmark, vehicles_table):
    hd_result, bf_result = benchmark.pedantic(_run_both, args=(vehicles_table,), rounds=1, iterations=1)

    lines: list[str] = []
    distances: dict[str, tuple[float, float]] = {}
    for attribute in ATTRIBUTES:
        truth = ground_truth_marginal(vehicles_table, attribute)
        hd_marginal = histogram_from_samples(hd_result.samples, attribute).proportions()
        bf_marginal = histogram_from_samples(bf_result.samples, attribute).proportions()
        distances[attribute] = (
            total_variation_distance(hd_marginal, truth),
            total_variation_distance(bf_marginal, truth),
        )
        if attribute == "make":
            reference = histogram_from_table(vehicles_table, attribute).proportions()
            rows = [
                [
                    str(value),
                    f"{hd_marginal.get(value, 0.0):6.1%}",
                    f"{bf_marginal.get(value, 0.0):6.1%}",
                    f"{share:6.1%}",
                ]
                for value, share in sorted(reference.items(), key=lambda item: -item[1])
            ]
            lines += render_table(
                ["make", "HDSampler", "brute force", "ground truth"], rows
            ).splitlines()
            lines.append("")

    rows = [
        [attribute, f"{hd_tv:.3f}", f"{bf_tv:.3f}"]
        for attribute, (hd_tv, bf_tv) in distances.items()
    ]
    lines += render_table(["attribute", "TV(HDSampler, truth)", "TV(brute force, truth)"], rows).splitlines()
    lines += [
        "",
        f"HDSampler queries/sample : {hd_result.queries_per_sample:.2f}",
        f"brute force queries/sample: {bf_result.queries_per_sample:.2f}",
        "expected shape: both samplers recover the marginal shape; HDSampler needs",
        "far fewer queries per sample than the brute-force baseline.",
    ]
    record_report("E4", "marginal histograms vs brute-force validation (Figure 4)", lines)

    assert hd_result.sample_count == bf_result.sample_count == N_SAMPLES
    assert distances["make"][0] < 0.35
    assert hd_result.queries_per_sample < bf_result.queries_per_sample

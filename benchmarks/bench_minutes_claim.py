"""E9 (Section 1): "a snapshot of the marginal distribution … in a matter of minutes".

The paper's efficiency claim is comparative: a useful marginal snapshot costs
a few hundred interface queries, while crawling the database (the alternative
that meta-search engines would otherwise need) costs as many queries as there
are tuples divided by k at the very least, and the uniform brute-force
baseline costs orders of magnitude more per sample.  The report puts the
three numbers side by side, together with wall-clock time of the HDSampler
run on the simulated catalogue.
"""

from __future__ import annotations

import time

from conftest import make_vehicles_interface, record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig, SamplerAlgorithm
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider

N_SAMPLES = 150
ATTRIBUTES = ("make", "color", "condition")


def _run_hdsampler(vehicles_table):
    interface = make_vehicles_interface(vehicles_table)
    config = HDSamplerConfig(
        n_samples=N_SAMPLES, attributes=ATTRIBUTES, tradeoff=TradeoffSlider(0.55), seed=81
    )
    started = time.perf_counter()
    result = HDSampler(interface, config).run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_minutes_claim(benchmark, vehicles_table):
    result, elapsed = benchmark.pedantic(_run_hdsampler, args=(vehicles_table,), rounds=1, iterations=1)

    brute = HDSampler(
        make_vehicles_interface(vehicles_table),
        HDSamplerConfig(
            n_samples=40, attributes=ATTRIBUTES, algorithm=SamplerAlgorithm.BRUTE_FORCE,
            max_attempts=500_000, seed=82,
        ),
    ).run()

    n_rows = len(vehicles_table)
    k = 100
    crawl_lower_bound = (n_rows + k - 1) // k  # even a perfect crawl needs >= N/k queries
    schema_leaves = 1
    for name in ATTRIBUTES:
        schema_leaves *= vehicles_table.schema.attribute(name).cardinality

    rows = [
        ["HDSampler marginal snapshot", str(result.queries_issued),
         f"{result.queries_per_sample:.1f}", f"{elapsed:.1f}s"],
        ["brute-force uniform sampler", str(brute.queries_issued),
         f"{brute.queries_per_sample:.1f}" if brute.sample_count else "inf", "-"],
        ["full crawl (lower bound N/k)", str(crawl_lower_bound), "-", "-"],
        ["exhaustive leaf enumeration", str(schema_leaves), "-", "-"],
    ]
    table = render_table(["approach", "interface queries", "queries/sample", "wall clock"], rows)
    lines = table.splitlines() + [
        "",
        f"samples collected: {result.sample_count} over attributes {', '.join(ATTRIBUTES)}",
        "expected shape: the sampler's per-sample cost sits well below the brute-force",
        "baseline.  The crawl lower bound N/k is small on this 5k-row simulation, but",
        "it scales linearly with the database size (millions of tuples on Google Base)",
        "while the sampler's cost does not - which is why a marginal snapshot takes",
        "minutes rather than a prohibitive crawl.",
    ]
    record_report("E9", "'matter of minutes' efficiency claim", lines)

    assert result.sample_count == N_SAMPLES
    assert result.queries_per_sample < brute.queries_per_sample

"""E10 (reference [2], ICDE 2009): leveraging count information.

HDSampler ignores Google Base's counts because they are untrusted, but its
sample generator builds on the count-leveraging ideas of [2].  This benchmark
quantifies what counts buy: the count-aided drill-down versus the count-free
random walk on the same skewed categorical database, with exact and with noisy
counts, reporting queries per sample and marginal accuracy.
"""

from __future__ import annotations

from conftest import record_report

from repro.algorithms.count_based import CountAidedSampler
from repro.algorithms.random_walk import RandomWalkConfig, RandomWalkSampler
from repro.analytics.histogram import histogram_from_samples
from repro.analytics.report import render_table
from repro.analytics.skew import total_variation_distance
from repro.database.interface import CountMode, HiddenDatabaseInterface
from repro.database.stats import ground_truth_marginal
from repro.datasets.categorical import CategoricalConfig, generate_categorical_table

N_SAMPLES = 150


def _build_table():
    return generate_categorical_table(
        CategoricalConfig(n_rows=3_000, cardinalities=(6, 5, 4), skew=1.2, seed=91)
    )


def _run_count_aided(table, count_mode: CountMode, label: str):
    interface = HiddenDatabaseInterface(table, k=200, count_mode=count_mode, count_noise=0.3, seed=0)
    sampler = CountAidedSampler(interface, use_rejection=(count_mode is CountMode.NOISY), seed=93)
    samples = sampler.draw_samples(N_SAMPLES, max_attempts=20_000)
    return label, samples, sampler.report.queries_issued


def _run_random_walk(table):
    interface = HiddenDatabaseInterface(table, k=200, count_mode=CountMode.NONE, seed=0)
    sampler = RandomWalkSampler(interface, config=RandomWalkConfig(efficiency=0.5), seed=94)
    samples = sampler.draw_samples(N_SAMPLES, max_attempts=60_000)
    return "random walk (no counts)", samples, sampler.report.queries_issued


def test_count_aided_vs_count_free(benchmark):
    table = _build_table()

    def run_all():
        return [
            _run_count_aided(table, CountMode.EXACT, "count-aided (exact counts)"),
            _run_count_aided(table, CountMode.NOISY, "count-aided (noisy counts, ±30%)"),
            _run_random_walk(table),
        ]

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    truth = ground_truth_marginal(table, "c1")
    rows = []
    for label, samples, queries in runs:
        marginal = histogram_from_samples(samples, "c1").proportions()
        distance = total_variation_distance(marginal, truth)
        per_sample = queries / len(samples) if samples else float("inf")
        rows.append([label, str(len(samples)), str(queries), f"{per_sample:.2f}", f"{distance:.3f}"])

    table_text = render_table(
        ["sampler", "samples", "queries", "queries/sample", "TV(c1) vs truth"], rows
    )
    lines = table_text.splitlines() + [
        "",
        "expected shape: exact counts eliminate rejections entirely and give the",
        "lowest skew, noisy counts sit in between.  The count-free walk is cheaper",
        "per raw candidate on this generous interface (k=200) but pays with visibly",
        "higher skew; matching the count-aided accuracy without counts requires a",
        "lower slider position and many rejected candidates (see E5).",
    ]
    record_report("E10", "count-aided vs count-free sampling (ICDE'09 [2])", lines)

    by_label = {label: (samples, queries) for label, samples, queries in runs}
    exact_samples, _ = by_label["count-aided (exact counts)"]
    assert len(exact_samples) == N_SAMPLES
    exact_tv = total_variation_distance(
        histogram_from_samples(exact_samples, "c1").proportions(), truth
    )
    assert exact_tv < 0.2

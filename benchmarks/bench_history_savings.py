"""E7 (Section 3.2): query savings from the query-history cache.

"This module also keeps track of the query history and results to ensure that
the random query generation process accumulates savings by not issuing the
same query twice, or queries whose results can be inferred from the query
history."  The benchmark runs the identical sampling workload with and without
the cache and reports the interface queries actually issued.
"""

from __future__ import annotations

from conftest import record_report

from repro.analytics.report import render_table
from repro.core.config import HDSamplerConfig
from repro.core.hdsampler import HDSampler
from repro.core.tradeoff import TradeoffSlider
from repro.database.interface import HiddenDatabaseInterface
from repro.datasets.boolean import BooleanConfig, generate_boolean_table

N_SAMPLES = 200


def _build_table():
    # Correlated boolean data creates many repeated sub-queries, the situation
    # the history optimisation exploits best.
    return generate_boolean_table(
        BooleanConfig(
            n_rows=2_000, n_attributes=8, distribution="correlated",
            probability=0.6, skew=0.7, seed=61,
        )
    )


def _run(table, use_history: bool):
    interface = HiddenDatabaseInterface(table, k=15, seed=0)
    config = HDSamplerConfig(
        n_samples=N_SAMPLES,
        tradeoff=TradeoffSlider(0.8),
        use_history=use_history,
        max_attempts=40_000,
        seed=67,
    )
    result = HDSampler(interface, config).run()
    return result, interface.statistics.queries_issued


def test_history_cache_savings(benchmark):
    table = _build_table()

    def run_both():
        return _run(table, use_history=True), _run(table, use_history=False)

    (with_history, issued_with), (without_history, issued_without) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    saving = 1.0 - issued_with / issued_without if issued_without else 0.0
    rows = [
        ["with history cache", str(with_history.sample_count), str(issued_with),
         f"{issued_with / with_history.sample_count:.2f}"],
        ["without history cache", str(without_history.sample_count), str(issued_without),
         f"{issued_without / without_history.sample_count:.2f}"],
    ]
    table_text = render_table(["configuration", "samples", "interface queries", "queries/sample"], rows)
    history = with_history.history_report or {}
    lines = table_text.splitlines() + [
        "",
        f"cache submissions: {int(history.get('submissions', 0))}, exact hits: "
        f"{int(history.get('exact_hits', 0))}, inferred answers: {int(history.get('inferred', 0))}",
        f"interface queries saved versus no cache: {saving:.1%}",
        "expected shape: the cached run issues strictly fewer interface queries for",
        "the same number of samples.",
    ]
    record_report("E7", "query-history optimisation savings", lines)

    assert with_history.sample_count == without_history.sample_count == N_SAMPLES
    assert issued_with < issued_without

"""Engine-scaling benchmark: indexed evaluation vs the naive full scan (PR 2).

Times ``QueryEngine.execute`` with and without the inverted index at
1k/10k/50k rows, and warm-history ``QueryHistoryCache.submit`` with subset-key
inference vs the linear history scan, then writes the machine-readable
``BENCH_engine.json`` (ops/sec and speedup ratios) so the repo's performance
trajectory is recorded run over run.

Unlike the pytest-benchmark experiments (E1–E12), this file is a standalone
script so CI can run it as a smoke check:

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --quick    # smallest size only
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --check    # assert speedup floors

``--check`` enforces the PR 2 acceptance floors (≥5× indexed execute at the
largest size, ≥2× warm-history submit) — in quick mode a softer ≥1.5× floor
suited to small tables and noisy CI runners — so index regressions fail loudly.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.history import QueryHistoryCache
from repro.database.engine import QueryEngine
from repro.database.interface import HiddenDatabaseInterface
from repro.database.query import ConjunctiveQuery
from repro.datasets.vehicles import VehiclesConfig, default_vehicles_ranking, generate_vehicles_table

FULL_SIZES = (1_000, 10_000, 50_000)
QUICK_SIZES = (1_000,)
K = 100
SEED = 2009


def _random_queries(schema, rng: random.Random, count: int, min_preds: int, max_preds: int):
    queries = []
    for _ in range(count):
        n = rng.randint(min_preds, min(max_preds, len(schema)))
        attributes = rng.sample(schema.attribute_names, n)
        assignment = {
            name: rng.choice(schema.attribute(name).domain.values) for name in attributes
        }
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


def _time_ops(action, operands) -> float:
    """Run ``action`` over ``operands`` and return operations per second."""
    start = time.perf_counter()
    for operand in operands:
        action(operand)
    elapsed = time.perf_counter() - start
    return len(operands) / elapsed if elapsed > 0 else float("inf")


def bench_execute(table, queries) -> dict:
    """Indexed vs scan ``execute()`` over the same query workload."""
    ranking = default_vehicles_ranking()
    indexed = QueryEngine(table, k=K, ranking=ranking, use_index=True)
    scan = QueryEngine(table, k=K, ranking=ranking, use_index=False)
    # Equivalence smoke check before timing: same results, query for query.
    for query in queries[:25]:
        fast, slow = indexed.execute(query), scan.execute(query)
        assert fast.returned_row_ids == slow.returned_row_ids, str(query)
        assert fast.outcome is slow.outcome and fast.total_count == slow.total_count
    indexed_ops = _time_ops(indexed.execute, queries)
    scan_ops = _time_ops(scan.execute, queries)
    return {
        "queries": len(queries),
        "indexed_ops_per_sec": round(indexed_ops, 1),
        "scan_ops_per_sec": round(scan_ops, 1),
        "speedup": round(indexed_ops / scan_ops, 2),
    }


def bench_warm_history(table, rng: random.Random, n_warm: int, n_timed: int) -> dict:
    """Warm-cache ``submit()`` with subset-key inference vs the linear scan.

    Both caches are warmed with the same (mostly valid/empty, deep) queries;
    the timed queries are one-step specialisations, i.e. answerable purely by
    inference, so the measurement isolates the ancestor-lookup strategy.
    """
    schema = table.schema
    warm = _random_queries(schema, rng, n_warm, 3, 4)
    timed = []
    for query in _random_queries(schema, rng, n_timed, 3, 4):
        if query.free_attributes:
            attribute = rng.choice(query.free_attributes)
            value = rng.choice(schema.attribute(attribute).domain.values)
            query = query.specialise(attribute, value)
        timed.append(query)

    results = {}
    for mode in ("indexed", "scan"):
        interface = HiddenDatabaseInterface(table, k=K, ranking=default_vehicles_ranking(), seed=0)
        cache = QueryHistoryCache(interface, inference=mode)
        for query in warm:
            cache.submit(query)
        results[mode] = {
            "ops_per_sec": _time_ops(cache.submit, timed),
            "history_entries": len(cache),
            "saving_ratio": cache.statistics.saving_ratio,
        }
    indexed_ops = results["indexed"]["ops_per_sec"]
    scan_ops = results["scan"]["ops_per_sec"]
    return {
        "warm_entries": results["indexed"]["history_entries"],
        "timed_submissions": n_timed,
        "indexed_ops_per_sec": round(indexed_ops, 1),
        "scan_ops_per_sec": round(scan_ops, 1),
        "speedup": round(indexed_ops / scan_ops, 2),
    }


def run(sizes, n_queries: int, n_warm: int, n_timed: int) -> dict:
    report = {"k": K, "seed": SEED, "sizes": {}}
    for n_rows in sizes:
        rng = random.Random(SEED + n_rows)
        table = generate_vehicles_table(VehiclesConfig(n_rows=n_rows, seed=SEED))
        queries = _random_queries(table.schema, rng, n_queries, 1, 4)
        execute = bench_execute(table, queries)
        history = bench_warm_history(table, rng, n_warm, n_timed)
        report["sizes"][str(n_rows)] = {"execute": execute, "warm_history_submit": history}
        print(
            f"rows={n_rows:>6}  execute: {execute['indexed_ops_per_sec']:>8.1f} vs "
            f"{execute['scan_ops_per_sec']:>7.1f} q/s ({execute['speedup']:.1f}x)   "
            f"warm submit: {history['indexed_ops_per_sec']:>8.1f} vs "
            f"{history['scan_ops_per_sec']:>7.1f} q/s ({history['speedup']:.1f}x)"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smallest size + reduced workload (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail if the indexed path regresses below the speedup floors")
    parser.add_argument("--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(QUICK_SIZES, n_queries=150, n_warm=400, n_timed=200)
    else:
        report = run(FULL_SIZES, n_queries=300, n_warm=1_500, n_timed=400)
    report["mode"] = "quick" if args.quick else "full"

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        largest = report["sizes"][str(max(int(s) for s in report["sizes"]))]
        execute_floor, history_floor = (1.5, 1.5) if args.quick else (5.0, 2.0)
        execute_speedup = largest["execute"]["speedup"]
        history_speedup = largest["warm_history_submit"]["speedup"]
        if execute_speedup < execute_floor:
            print(f"FAIL: execute speedup {execute_speedup}x < {execute_floor}x floor")
            return 1
        if history_speedup < history_floor:
            print(f"FAIL: warm-history submit speedup {history_speedup}x < {history_floor}x floor")
            return 1
        print(f"check passed: execute {execute_speedup}x >= {execute_floor}x, "
              f"warm submit {history_speedup}x >= {history_floor}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Concurrent-dispatch benchmark: overlapped round-trips, identical bytes (PR 4).

The paper's sampler is rate-limited by round-trips to the hidden database.
This benchmark answers the question the dispatch subsystem exists for: when
each shard sub-query costs a network-shaped round-trip, does scattering the
sub-queries over a thread pool actually buy the wall-clock back?

Three sections:

* **parallel_shards** (guarded) — 4 table shards, each wrapped in an
  ``UnreliableLayer(latency=...)`` simulating a per-request round-trip, behind
  a serial ``ShardRouter`` vs a ``ConcurrentShardRouter``.  The merged
  responses are asserted byte-identical first; then the parallel router must
  deliver **≥ 2× the serial throughput** (it approaches 4× — the serial
  router pays 4 round-trips per query, the parallel one pays ~1).
* **inprocess_shards** (informational) — the same routers over bare
  CPU-bound shards, no latency.  Honest numbers: the interpreter lock
  serialises pure-Python ranking, so threads buy ~nothing here; this section
  documents that parallel dispatch is a *latency* optimisation, not a CPU one.
* **remote_http** (guarded) — live ``repro.web.httpd`` endpoints on loopback
  sockets.  Two guarded sub-sections exercise the transport optimisations on
  the configs they exist for: **pooled vs unpooled** on a connect-dominated
  config (cheap queries, so the per-request TCP connect is the cost — pooled
  keep-alive must be **≥ 1.3×** the one-connect-per-request baseline), and
  **batched vs single** on a latency-bound config (each server-side
  submission pays a simulated database hop, the shard sections' trick —
  ``POST /api/submit_batch`` fan-out must be **≥ 1.5×** single-query
  round-trips).  The merged responses are asserted byte-identical first,
  as always.
* **concurrent_serving** (guarded) — the async serving tier (ISSUE 8):
  the *same* sustained workload — ``SERVE_CLIENTS`` persistent clients each
  issuing a stream of single-query submissions over its own keep-alive
  connection — against a ``ThreadingHTTPServer`` front end vs the
  ``repro.web.aiohttpd`` event loop, served backend and client identical, so
  the serving tier is the only variable.  At high client counts the
  thread-per-connection tier degrades (one runnable Python thread per
  connection, all convoying on the interpreter lock) and — crucially for a
  CI gate — degrades *noisily*: single passes swing several-fold on scheduler
  luck.  Each tier is therefore measured as the **median of three
  alternating passes** against a fresh server, and the async median must be
  **≥ 1.5×** the threaded one.  Byte-identity across the two front ends is
  asserted first, through both remote clients.

Usage (mirrors the other benchmark scripts)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py            # full run (50k rows)
    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick    # reduced workload
    PYTHONPATH=src python benchmarks/bench_dispatch.py --check    # assert the 2x floor

Results are written to ``BENCH_dispatch.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import (
    AsyncRemoteBackend,
    BackendStack,
    ConcurrentShardRouter,
    RemoteBackend,
    ShardRouter,
    TableShardBackend,
    UnreliableLayer,
    engine_stack,
    remote_stack,
)
from repro.database.query import ConjunctiveQuery
from repro.datasets.vehicles import VehiclesConfig, generate_vehicles_table
from repro.web.aiohttpd import AsyncHiddenDatabaseHTTPServer
from repro.web.httpd import HiddenDatabaseHTTPServer

K = 100
SEED = 2026
N_SHARDS = 4
#: Simulated per-request round-trip of one shard backend, seconds.  4 ms is
#: conservative for a LAN database hop; WAN latencies only widen the gap.
SHARD_LATENCY = 0.004

#: Acceptance floor: the parallel router must at least halve the wall clock
#: of latency-bound 4-shard dispatch (the theoretical ceiling is ~4x).
MIN_PARALLEL_SPEEDUP = 2.0

#: Rows of the remote-section catalogue: small on purpose, so per-request
#: transport overhead (the thing under test) dominates per-query engine work.
REMOTE_ROWS = 500
#: Simulated per-submission hop of the latency-bound remote config, seconds —
#: the web server's own backend paying a LAN database round-trip.
REMOTE_BACKEND_LATENCY = 0.002
#: Wire-batch shape of the batched remote config.
BATCH_SIZE = 25
BATCH_WORKERS = 4

#: Acceptance floors for the remote transport (ISSUE 5): keep-alive pooling
#: must beat one-connect-per-request by ≥ 1.3x on the connect-dominated
#: config, and the batch endpoint must beat single-query round-trips by
#: ≥ 1.5x on the latency-bound config.
MIN_POOL_SPEEDUP = 1.3
MIN_BATCH_SPEEDUP = 1.5

#: Concurrent-serving section (ISSUE 8).  64 persistent clients is the point
#: where thread-per-connection serving visibly convoys on the interpreter
#: lock even on small hosts; fewer clients let the threaded tier get lucky,
#: more make it shed connections outright.
SERVE_CLIENTS = 64
#: Small top-k so each request is transport-shaped, not ranking-shaped —
#: the serving tier, not the engine, is the thing under test.
SERVE_K = 25
#: Warm rounds per client before any timing: establishes the keep-alive
#: connections (in staggered waves — see ``bench_concurrent_serving``) and
#: lets both tiers reach steady state.
SERVE_WARM_ROUNDS = 4
#: Connections are established in waves of this size during warm-up; dumping
#: all 64 SYNs at once overflows the threaded server's listen backlog (5) and
#: the resulting SYN retransmits stall for whole seconds.
SERVE_STAGGER_GROUP = 8
#: Timed passes per tier, alternated threaded/async; the median is compared.
#: Single threaded passes at this concurrency are bimodal (scheduler luck),
#: so a CI gate on one pass would flake.
SERVE_PASSES = 3

#: Acceptance floor for the async serving tier: at high client counts the
#: event-loop front end must sustain ≥ 1.5x the threaded front end's
#: throughput on the identical workload (observed margin is well above).
MIN_ASYNC_SERVE_SPEEDUP = 1.5


def _random_queries(schema, rng: random.Random, count: int, min_preds: int = 1, max_preds: int = 3):
    queries = []
    for _ in range(count):
        n = rng.randint(min_preds, min(max_preds, len(schema)))
        attributes = rng.sample(schema.attribute_names, n)
        assignment = {
            name: rng.choice(schema.attribute(name).domain.values) for name in attributes
        }
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


def _time(action, operands) -> float:
    start = time.perf_counter()
    for operand in operands:
        action(operand)
    return time.perf_counter() - start


def _latency_shards(table, ranking=None) -> list[UnreliableLayer]:
    """The 4 partitions, each behind a simulated per-request round-trip."""
    return [
        UnreliableLayer(
            TableShardBackend(table, K, shard_index, N_SHARDS, ranking=ranking),
            latency=SHARD_LATENCY,
        )
        for shard_index in range(N_SHARDS)
    ]


def bench_parallel_shards(table, queries) -> dict:
    """Latency-bound shard dispatch: serial vs thread-pooled, same bytes."""
    serial = ShardRouter(_latency_shards(table))
    parallel = ConcurrentShardRouter(_latency_shards(table), max_workers=N_SHARDS)
    # Byte-identical first, fast second.
    for query in queries[: min(20, len(queries))]:
        assert serial.submit(query) == parallel.submit(query), str(query)
    serial_time = _time(serial.submit, queries)
    parallel_time = _time(parallel.submit, queries)
    parallel.close()
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "n_shards": N_SHARDS,
        "shard_latency_ms": SHARD_LATENCY * 1000,
        "serial_ops_per_sec": round(len(queries) / serial_time, 1),
        "parallel_ops_per_sec": round(len(queries) / parallel_time, 1),
        "speedup": round(speedup, 2),
    }


def bench_inprocess_shards(table, queries) -> dict:
    """The honest control: CPU-bound shards, where the GIL caps the win."""
    serial = ShardRouter.over_table(table, N_SHARDS, k=K)
    parallel = ConcurrentShardRouter.over_table(table, N_SHARDS, k=K, max_workers=N_SHARDS)
    for query in queries[: min(20, len(queries))]:
        assert serial.submit(query) == parallel.submit(query), str(query)
    serial_time = _time(serial.submit, queries)
    parallel_time = _time(parallel.submit, queries)
    parallel.close()
    return {
        "queries": len(queries),
        # Never enforced by --check: the GIL caps this section by design and
        # its speedup hovers around 1.0x either side of even.
        "informational": True,
        "serial_ops_per_sec": round(len(queries) / serial_time, 1),
        "parallel_ops_per_sec": round(len(queries) / parallel_time, 1),
        "speedup": round(serial_time / parallel_time, 2) if parallel_time > 0 else None,
    }


def bench_remote_pooling(remote_table, queries) -> dict:
    """Connect-dominated config: keep-alive pooling vs one connect per request.

    The served catalogue is deliberately small so the per-request TCP connect
    (plus the handler thread it spawns server-side) is the dominant cost —
    exactly what a pooled persistent connection amortises away.
    """
    served = engine_stack(remote_table, K, statistics=False)
    with HiddenDatabaseHTTPServer(served) as server:
        pooled = RemoteBackend(server.url)
        unpooled = RemoteBackend(server.url, pool_size=0)
        # Byte-identical first, fast second.
        for query in queries[: min(20, len(queries))]:
            assert pooled.submit(query) == unpooled.submit(query), str(query)
        unpooled_time = _time(unpooled.submit, queries)
        pooled_time = _time(pooled.submit, queries)
        pool_stats = pooled.pool_statistics
        pooled.close()
    speedup = unpooled_time / pooled_time if pooled_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "rows": REMOTE_ROWS,
        "unpooled_ops_per_sec": round(len(queries) / unpooled_time, 1),
        "pooled_ops_per_sec": round(len(queries) / pooled_time, 1),
        "pooled_speedup": round(speedup, 2),
        "pool_statistics": pool_stats,
    }


def bench_remote_batching(remote_table, queries) -> dict:
    """Latency-bound config: one POST per 25 queries vs one GET per query.

    The endpoint's own backend pays a simulated per-submission database hop
    (the same trick the shard section uses), so single-query round-trips are
    latency-bound; the batch endpoint amortises the hop over the server's
    concurrent item fan-out and the HTTP overhead over the whole chunk.
    """
    raw = engine_stack(remote_table, K, statistics=False).top
    served = BackendStack(
        raw, [lambda inner: UnreliableLayer(inner, latency=REMOTE_BACKEND_LATENCY)]
    )
    with HiddenDatabaseHTTPServer(served, batch_workers=8) as server:
        single = remote_stack(server.url)
        batched = remote_stack(server.url, parallel=BATCH_WORKERS, batch=BATCH_SIZE)
        probe = queries[: min(20, len(queries))]
        assert batched.submit_many(probe) == [single.submit(q) for q in probe]
        single_time = _time(single.submit, queries)
        batch_time = time.perf_counter()
        batched.submit_many(queries)
        batch_time = time.perf_counter() - batch_time
        retry_stats = batched.layer(UnreliableLayer).statistics.as_dict()
    speedup = single_time / batch_time if batch_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "rows": REMOTE_ROWS,
        "backend_latency_ms": REMOTE_BACKEND_LATENCY * 1000,
        "batch_size": BATCH_SIZE,
        "batch_workers": BATCH_WORKERS,
        "single_ops_per_sec": round(len(queries) / single_time, 1),
        "batched_ops_per_sec": round(len(queries) / batch_time, 1),
        "batched_speedup": round(speedup, 2),
        "retry_statistics": retry_stats,
    }


async def _drive_serve_clients(backend, client_queries, n_clients: int, stagger: bool) -> None:
    """Fan ``client_queries`` out over ``n_clients`` concurrent client tasks.

    With ``stagger`` the tasks start in waves of ``SERVE_STAGGER_GROUP`` so
    connections are established a handful at a time: dumping all 64 SYNs at
    once overflows the threaded server's listen backlog (5) and the resulting
    SYN retransmits stall for whole seconds.
    """
    per_client = [client_queries[i::n_clients] for i in range(n_clients)]

    async def one_client(work) -> None:
        for query in work:
            await backend.asubmit(query)

    tasks = []
    for start in range(0, n_clients, SERVE_STAGGER_GROUP):
        tasks.extend(
            asyncio.ensure_future(one_client(per_client[i]))
            for i in range(start, min(start + SERVE_STAGGER_GROUP, n_clients))
        )
        if stagger:
            await asyncio.sleep(0.05)
    await asyncio.gather(*tasks)


def _serve_pass(make_server, warm, timed, n_clients: int) -> float:
    """One cold pass: fresh server, fresh client wave, timed steady drive.

    Warm-up and the timed drive share a single ``asyncio.run`` session — the
    remote pool keys its connections by event loop, so splitting them across
    sessions would silently re-connect mid-measurement.
    """
    with make_server() as server:
        backend = AsyncRemoteBackend(server.url, pool_size=n_clients, timeout=120.0)
        try:

            async def session() -> float:
                await _drive_serve_clients(backend, warm, n_clients, stagger=True)
                start = time.perf_counter()
                await _drive_serve_clients(backend, timed, n_clients, stagger=False)
                return time.perf_counter() - start

            return asyncio.run(session())
        finally:
            backend.close()


def bench_concurrent_serving(remote_table, queries, rounds: int) -> dict:
    """Client-wave serving load: threaded vs asyncio front end, same bytes.

    Each pass is deliberately *cold*: a fresh front end absorbs a freshly
    arriving wave of ``SERVE_CLIENTS`` persistent clients (staggered
    connection establishment, ``SERVE_WARM_ROUNDS`` un-timed requests each),
    then the timed drive runs on the established connections.  That is the
    high-client-count scenario the async tier exists for — and it is where
    the tiers differ *structurally*: thread-per-connection pays a spawned
    handler thread plus scheduler churn for every arriving connection and
    convoys on the interpreter lock while the wave settles, whereas the
    event loop just accepts.  (Left running on the same connections for long
    enough, the threaded tier eventually recovers to near parity — a warm
    steady state this section intentionally does not measure.)

    Passes alternate threaded/async ``SERVE_PASSES`` times and the medians
    are compared: threaded passes are additionally noisy (scheduler luck),
    and the median over independent cold passes is what makes the 1.5x
    floor CI-safe.
    """
    served = engine_stack(remote_table, SERVE_K, statistics=False)
    n_clients = SERVE_CLIENTS
    warm = queries[: n_clients * SERVE_WARM_ROUNDS]
    timed = queries[n_clients * SERVE_WARM_ROUNDS :][: n_clients * rounds]

    # request_timeout=None on both: a convoying tier should post a slow
    # number, not shed the measurement's connections mid-pass.
    def make_threaded():
        return HiddenDatabaseHTTPServer(served, serve_pages=False, request_timeout=None)

    def make_async():
        return AsyncHiddenDatabaseHTTPServer(served, serve_pages=False, request_timeout=None)

    # Byte-identical first: both front ends, both remote clients.
    with make_threaded() as threaded_server, make_async() as async_server:
        clients = [
            RemoteBackend(threaded_server.url),
            RemoteBackend(async_server.url),
            AsyncRemoteBackend(threaded_server.url),
            AsyncRemoteBackend(async_server.url),
        ]
        try:
            for query in timed[: min(20, len(timed))]:
                expected = clients[0].submit(query)
                for other in clients[1:]:
                    assert other.submit(query) == expected, str(query)
        finally:
            for client in clients:
                client.close()

    threaded_times = []
    async_times = []
    for _ in range(SERVE_PASSES):
        threaded_times.append(_serve_pass(make_threaded, warm, timed, n_clients))
        async_times.append(_serve_pass(make_async, warm, timed, n_clients))
    threaded_rates = [round(len(timed) / elapsed, 1) for elapsed in threaded_times]
    async_rates = [round(len(timed) / elapsed, 1) for elapsed in async_times]
    threaded_median = statistics.median(threaded_rates)
    async_median = statistics.median(async_rates)
    speedup = async_median / threaded_median if threaded_median > 0 else float("inf")
    return {
        "clients": n_clients,
        "rounds_per_client": rounds,
        "queries_per_pass": len(timed),
        "passes": SERVE_PASSES,
        "k": SERVE_K,
        "rows": REMOTE_ROWS,
        "threaded_pass_ops_per_sec": threaded_rates,
        "async_pass_ops_per_sec": async_rates,
        "threaded_ops_per_sec": threaded_median,
        "async_ops_per_sec": async_median,
        "async_speedup": round(speedup, 2),
    }


def run(
    n_rows: int,
    n_latency_queries: int,
    n_cpu_queries: int,
    n_http_queries: int,
    n_serve_rounds: int,
) -> dict:
    rng = random.Random(SEED)
    table = generate_vehicles_table(VehiclesConfig(n_rows=n_rows, seed=SEED))
    remote_table = generate_vehicles_table(VehiclesConfig(n_rows=REMOTE_ROWS, seed=SEED))
    latency_queries = _random_queries(table.schema, rng, n_latency_queries)
    cpu_queries = _random_queries(table.schema, rng, n_cpu_queries)
    http_queries = _random_queries(remote_table.schema, rng, n_http_queries)
    serving_queries = _random_queries(
        remote_table.schema, rng, SERVE_CLIENTS * (SERVE_WARM_ROUNDS + n_serve_rounds)
    )
    shards = bench_parallel_shards(table, latency_queries)
    inprocess = bench_inprocess_shards(table, cpu_queries)
    pooling = bench_remote_pooling(remote_table, http_queries)
    batching = bench_remote_batching(remote_table, http_queries)
    serving = bench_concurrent_serving(remote_table, serving_queries, n_serve_rounds)
    print(
        f"rows={n_rows}  latency-bound {N_SHARDS}-shard dispatch: "
        f"{shards['parallel_ops_per_sec']:>7.1f} vs {shards['serial_ops_per_sec']:>7.1f} q/s "
        f"({shards['speedup']:.2f}x)   in-process: {inprocess['speedup']:.2f}x"
    )
    print(
        f"remote http: pooled {pooling['pooled_ops_per_sec']:.1f} vs unpooled "
        f"{pooling['unpooled_ops_per_sec']:.1f} q/s ({pooling['pooled_speedup']:.2f}x)   "
        f"batched {batching['batched_ops_per_sec']:.1f} vs single "
        f"{batching['single_ops_per_sec']:.1f} q/s ({batching['batched_speedup']:.2f}x)"
    )
    print(
        f"concurrent serving ({serving['clients']} clients, median of "
        f"{serving['passes']}): async {serving['async_ops_per_sec']:.1f} vs "
        f"threaded {serving['threaded_ops_per_sec']:.1f} q/s "
        f"({serving['async_speedup']:.2f}x)"
    )
    return {
        "k": K,
        "seed": SEED,
        "rows": n_rows,
        "parallel_shards": shards,
        "inprocess_shards": inprocess,
        "remote_http": {
            "pooling": pooling,
            "batching": batching,
        },
        "concurrent_serving": serving,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail if the parallel-dispatch speedup regresses past the floor")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_dispatch.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(
            n_rows=5_000,
            n_latency_queries=60,
            n_cpu_queries=150,
            n_http_queries=60,
            n_serve_rounds=6,
        )
    else:
        report = run(
            n_rows=50_000,
            n_latency_queries=200,
            n_cpu_queries=400,
            n_http_queries=150,
            n_serve_rounds=15,
        )
    report["mode"] = "quick" if args.quick else "full"

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        speedup = report["parallel_shards"]["speedup"]
        if speedup < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel {N_SHARDS}-shard dispatch speedup {speedup:.2f}x "
                f"< {MIN_PARALLEL_SPEEDUP:.0f}x floor"
            )
        pooled = report["remote_http"]["pooling"]["pooled_speedup"]
        if pooled < MIN_POOL_SPEEDUP:
            failures.append(
                f"pooled remote speedup {pooled:.2f}x < {MIN_POOL_SPEEDUP:.1f}x floor"
            )
        batched = report["remote_http"]["batching"]["batched_speedup"]
        if batched < MIN_BATCH_SPEEDUP:
            failures.append(
                f"batched remote speedup {batched:.2f}x < {MIN_BATCH_SPEEDUP:.1f}x floor"
            )
        serving = report["concurrent_serving"]["async_speedup"]
        if serving < MIN_ASYNC_SERVE_SPEEDUP:
            failures.append(
                f"async serving speedup {serving:.2f}x < "
                f"{MIN_ASYNC_SERVE_SPEEDUP:.1f}x floor"
            )
        inprocess = report["inprocess_shards"]["speedup"]
        print(
            f"note: in-process shard control is informational only "
            f"({inprocess:.2f}x, GIL-bound by design — no floor enforced)"
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"check passed: parallel dispatch {speedup:.2f}x >= "
            f"{MIN_PARALLEL_SPEEDUP:.0f}x, pooled remote {pooled:.2f}x >= "
            f"{MIN_POOL_SPEEDUP:.1f}x, batched remote {batched:.2f}x >= "
            f"{MIN_BATCH_SPEEDUP:.1f}x, async serving {serving:.2f}x >= "
            f"{MIN_ASYNC_SERVE_SPEEDUP:.1f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Concurrent-dispatch benchmark: overlapped round-trips, identical bytes (PR 4).

The paper's sampler is rate-limited by round-trips to the hidden database.
This benchmark answers the question the dispatch subsystem exists for: when
each shard sub-query costs a network-shaped round-trip, does scattering the
sub-queries over a thread pool actually buy the wall-clock back?

Three sections:

* **parallel_shards** (guarded) — 4 table shards, each wrapped in an
  ``UnreliableLayer(latency=...)`` simulating a per-request round-trip, behind
  a serial ``ShardRouter`` vs a ``ConcurrentShardRouter``.  The merged
  responses are asserted byte-identical first; then the parallel router must
  deliver **≥ 2× the serial throughput** (it approaches 4× — the serial
  router pays 4 round-trips per query, the parallel one pays ~1).
* **inprocess_shards** (informational) — the same routers over bare
  CPU-bound shards, no latency.  Honest numbers: the interpreter lock
  serialises pure-Python ranking, so threads buy ~nothing here; this section
  documents that parallel dispatch is a *latency* optimisation, not a CPU one.
* **remote_http** (guarded) — live ``repro.web.httpd`` endpoints on loopback
  sockets.  Two guarded sub-sections exercise the transport optimisations on
  the configs they exist for: **pooled vs unpooled** on a connect-dominated
  config (cheap queries, so the per-request TCP connect is the cost — pooled
  keep-alive must be **≥ 1.3×** the one-connect-per-request baseline), and
  **batched vs single** on a latency-bound config (each server-side
  submission pays a simulated database hop, the shard sections' trick —
  ``POST /api/submit_batch`` fan-out must be **≥ 1.5×** single-query
  round-trips).  The merged responses are asserted byte-identical first,
  as always.

Usage (mirrors the other benchmark scripts)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py            # full run (50k rows)
    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick    # reduced workload
    PYTHONPATH=src python benchmarks/bench_dispatch.py --check    # assert the 2x floor

Results are written to ``BENCH_dispatch.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import (
    BackendStack,
    ConcurrentShardRouter,
    ShardRouter,
    TableShardBackend,
    UnreliableLayer,
    engine_stack,
    remote_stack,
)
from repro.database.query import ConjunctiveQuery
from repro.datasets.vehicles import VehiclesConfig, generate_vehicles_table
from repro.web.httpd import HiddenDatabaseHTTPServer

K = 100
SEED = 2026
N_SHARDS = 4
#: Simulated per-request round-trip of one shard backend, seconds.  4 ms is
#: conservative for a LAN database hop; WAN latencies only widen the gap.
SHARD_LATENCY = 0.004

#: Acceptance floor: the parallel router must at least halve the wall clock
#: of latency-bound 4-shard dispatch (the theoretical ceiling is ~4x).
MIN_PARALLEL_SPEEDUP = 2.0

#: Rows of the remote-section catalogue: small on purpose, so per-request
#: transport overhead (the thing under test) dominates per-query engine work.
REMOTE_ROWS = 500
#: Simulated per-submission hop of the latency-bound remote config, seconds —
#: the web server's own backend paying a LAN database round-trip.
REMOTE_BACKEND_LATENCY = 0.002
#: Wire-batch shape of the batched remote config.
BATCH_SIZE = 25
BATCH_WORKERS = 4

#: Acceptance floors for the remote transport (ISSUE 5): keep-alive pooling
#: must beat one-connect-per-request by ≥ 1.3x on the connect-dominated
#: config, and the batch endpoint must beat single-query round-trips by
#: ≥ 1.5x on the latency-bound config.
MIN_POOL_SPEEDUP = 1.3
MIN_BATCH_SPEEDUP = 1.5


def _random_queries(schema, rng: random.Random, count: int, min_preds: int = 1, max_preds: int = 3):
    queries = []
    for _ in range(count):
        n = rng.randint(min_preds, min(max_preds, len(schema)))
        attributes = rng.sample(schema.attribute_names, n)
        assignment = {
            name: rng.choice(schema.attribute(name).domain.values) for name in attributes
        }
        queries.append(ConjunctiveQuery.from_assignment(schema, assignment))
    return queries


def _time(action, operands) -> float:
    start = time.perf_counter()
    for operand in operands:
        action(operand)
    return time.perf_counter() - start


def _latency_shards(table, ranking=None) -> list[UnreliableLayer]:
    """The 4 partitions, each behind a simulated per-request round-trip."""
    return [
        UnreliableLayer(
            TableShardBackend(table, K, shard_index, N_SHARDS, ranking=ranking),
            latency=SHARD_LATENCY,
        )
        for shard_index in range(N_SHARDS)
    ]


def bench_parallel_shards(table, queries) -> dict:
    """Latency-bound shard dispatch: serial vs thread-pooled, same bytes."""
    serial = ShardRouter(_latency_shards(table))
    parallel = ConcurrentShardRouter(_latency_shards(table), max_workers=N_SHARDS)
    # Byte-identical first, fast second.
    for query in queries[: min(20, len(queries))]:
        assert serial.submit(query) == parallel.submit(query), str(query)
    serial_time = _time(serial.submit, queries)
    parallel_time = _time(parallel.submit, queries)
    parallel.close()
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "n_shards": N_SHARDS,
        "shard_latency_ms": SHARD_LATENCY * 1000,
        "serial_ops_per_sec": round(len(queries) / serial_time, 1),
        "parallel_ops_per_sec": round(len(queries) / parallel_time, 1),
        "speedup": round(speedup, 2),
    }


def bench_inprocess_shards(table, queries) -> dict:
    """The honest control: CPU-bound shards, where the GIL caps the win."""
    serial = ShardRouter.over_table(table, N_SHARDS, k=K)
    parallel = ConcurrentShardRouter.over_table(table, N_SHARDS, k=K, max_workers=N_SHARDS)
    for query in queries[: min(20, len(queries))]:
        assert serial.submit(query) == parallel.submit(query), str(query)
    serial_time = _time(serial.submit, queries)
    parallel_time = _time(parallel.submit, queries)
    parallel.close()
    return {
        "queries": len(queries),
        "serial_ops_per_sec": round(len(queries) / serial_time, 1),
        "parallel_ops_per_sec": round(len(queries) / parallel_time, 1),
        "speedup": round(serial_time / parallel_time, 2) if parallel_time > 0 else None,
    }


def bench_remote_pooling(remote_table, queries) -> dict:
    """Connect-dominated config: keep-alive pooling vs one connect per request.

    The served catalogue is deliberately small so the per-request TCP connect
    (plus the handler thread it spawns server-side) is the dominant cost —
    exactly what a pooled persistent connection amortises away.
    """
    from repro.backends import RemoteBackend

    served = engine_stack(remote_table, K, statistics=False)
    with HiddenDatabaseHTTPServer(served) as server:
        pooled = RemoteBackend(server.url)
        unpooled = RemoteBackend(server.url, pool_size=0)
        # Byte-identical first, fast second.
        for query in queries[: min(20, len(queries))]:
            assert pooled.submit(query) == unpooled.submit(query), str(query)
        unpooled_time = _time(unpooled.submit, queries)
        pooled_time = _time(pooled.submit, queries)
        pool_stats = pooled.pool_statistics
        pooled.close()
    speedup = unpooled_time / pooled_time if pooled_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "rows": REMOTE_ROWS,
        "unpooled_ops_per_sec": round(len(queries) / unpooled_time, 1),
        "pooled_ops_per_sec": round(len(queries) / pooled_time, 1),
        "pooled_speedup": round(speedup, 2),
        "pool_statistics": pool_stats,
    }


def bench_remote_batching(remote_table, queries) -> dict:
    """Latency-bound config: one POST per 25 queries vs one GET per query.

    The endpoint's own backend pays a simulated per-submission database hop
    (the same trick the shard section uses), so single-query round-trips are
    latency-bound; the batch endpoint amortises the hop over the server's
    concurrent item fan-out and the HTTP overhead over the whole chunk.
    """
    raw = engine_stack(remote_table, K, statistics=False).top
    served = BackendStack(
        raw, [lambda inner: UnreliableLayer(inner, latency=REMOTE_BACKEND_LATENCY)]
    )
    with HiddenDatabaseHTTPServer(served, batch_workers=8) as server:
        single = remote_stack(server.url)
        batched = remote_stack(server.url, parallel=BATCH_WORKERS, batch=BATCH_SIZE)
        probe = queries[: min(20, len(queries))]
        assert batched.submit_many(probe) == [single.submit(q) for q in probe]
        single_time = _time(single.submit, queries)
        batch_time = time.perf_counter()
        batched.submit_many(queries)
        batch_time = time.perf_counter() - batch_time
        retry_stats = batched.layer(UnreliableLayer).statistics.as_dict()
    speedup = single_time / batch_time if batch_time > 0 else float("inf")
    return {
        "queries": len(queries),
        "rows": REMOTE_ROWS,
        "backend_latency_ms": REMOTE_BACKEND_LATENCY * 1000,
        "batch_size": BATCH_SIZE,
        "batch_workers": BATCH_WORKERS,
        "single_ops_per_sec": round(len(queries) / single_time, 1),
        "batched_ops_per_sec": round(len(queries) / batch_time, 1),
        "batched_speedup": round(speedup, 2),
        "retry_statistics": retry_stats,
    }


def run(n_rows: int, n_latency_queries: int, n_cpu_queries: int, n_http_queries: int) -> dict:
    rng = random.Random(SEED)
    table = generate_vehicles_table(VehiclesConfig(n_rows=n_rows, seed=SEED))
    remote_table = generate_vehicles_table(VehiclesConfig(n_rows=REMOTE_ROWS, seed=SEED))
    latency_queries = _random_queries(table.schema, rng, n_latency_queries)
    cpu_queries = _random_queries(table.schema, rng, n_cpu_queries)
    http_queries = _random_queries(remote_table.schema, rng, n_http_queries)
    shards = bench_parallel_shards(table, latency_queries)
    inprocess = bench_inprocess_shards(table, cpu_queries)
    pooling = bench_remote_pooling(remote_table, http_queries)
    batching = bench_remote_batching(remote_table, http_queries)
    print(
        f"rows={n_rows}  latency-bound {N_SHARDS}-shard dispatch: "
        f"{shards['parallel_ops_per_sec']:>7.1f} vs {shards['serial_ops_per_sec']:>7.1f} q/s "
        f"({shards['speedup']:.2f}x)   in-process: {inprocess['speedup']:.2f}x"
    )
    print(
        f"remote http: pooled {pooling['pooled_ops_per_sec']:.1f} vs unpooled "
        f"{pooling['unpooled_ops_per_sec']:.1f} q/s ({pooling['pooled_speedup']:.2f}x)   "
        f"batched {batching['batched_ops_per_sec']:.1f} vs single "
        f"{batching['single_ops_per_sec']:.1f} q/s ({batching['batched_speedup']:.2f}x)"
    )
    return {
        "k": K,
        "seed": SEED,
        "rows": n_rows,
        "parallel_shards": shards,
        "inprocess_shards": inprocess,
        "remote_http": {
            "pooling": pooling,
            "batching": batching,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail if the parallel-dispatch speedup regresses past the floor")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_dispatch.json",
                        help="where to write the machine-readable report")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(n_rows=5_000, n_latency_queries=60, n_cpu_queries=150, n_http_queries=60)
    else:
        report = run(n_rows=50_000, n_latency_queries=200, n_cpu_queries=400, n_http_queries=150)
    report["mode"] = "quick" if args.quick else "full"

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        speedup = report["parallel_shards"]["speedup"]
        if speedup < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel {N_SHARDS}-shard dispatch speedup {speedup:.2f}x "
                f"< {MIN_PARALLEL_SPEEDUP:.0f}x floor"
            )
        pooled = report["remote_http"]["pooling"]["pooled_speedup"]
        if pooled < MIN_POOL_SPEEDUP:
            failures.append(
                f"pooled remote speedup {pooled:.2f}x < {MIN_POOL_SPEEDUP:.1f}x floor"
            )
        batched = report["remote_http"]["batching"]["batched_speedup"]
        if batched < MIN_BATCH_SPEEDUP:
            failures.append(
                f"batched remote speedup {batched:.2f}x < {MIN_BATCH_SPEEDUP:.1f}x floor"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"check passed: parallel dispatch {speedup:.2f}x >= "
            f"{MIN_PARALLEL_SPEEDUP:.0f}x, pooled remote {pooled:.2f}x >= "
            f"{MIN_POOL_SPEEDUP:.1f}x, batched remote {batched:.2f}x >= "
            f"{MIN_BATCH_SPEEDUP:.1f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
